"""Job compilation and parallel execution of Sweep (bit-identity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim.runner import Sweep, SweepShard, grid_product

# Module-level so it pickles across the process boundary.
def _noisy_trial(params, rng):
    return float(params["base"]) + rng.standard_normal() * float(params["spread"])


GRID = grid_product(base=[1.0, 10.0, 100.0], spread=[0.5])


class TestJobCompilation:
    def test_serial_compiles_one_job_per_point(self):
        jobs = Sweep(_noisy_trial, GRID, trials=7, seed=1).compile_jobs()
        assert len(jobs) == len(GRID)
        assert all(job.trial_count == 7 for job in jobs)

    def test_jobs_partition_the_trial_square_exactly(self):
        sweep = Sweep(_noisy_trial, GRID, trials=10, seed=1, workers=4)
        jobs = sweep.compile_jobs()
        covered = {}
        for job in jobs:
            for trial in job.trial_indices:
                key = (job.point_index, trial)
                assert key not in covered, "trial covered twice"
                covered[key] = True
        assert len(covered) == len(GRID) * 10

    def test_explicit_job_size(self):
        jobs = Sweep(
            _noisy_trial, GRID, trials=10, seed=1, job_size=4
        ).compile_jobs()
        assert [j.trial_count for j in jobs if j.point_index == 0] == [4, 4, 2]

    def test_job_metadata(self):
        job = SweepShard(point_index=2, params={"a": 1}, trial_start=6, trial_count=3)
        assert list(job.trial_indices) == [6, 7, 8]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Sweep(_noisy_trial, GRID, trials=1, seed=1, workers=0)
        with pytest.raises(InvalidParameterError):
            Sweep(_noisy_trial, GRID, trials=1, seed=1, job_size=0)


class TestParallelBitIdentity:
    def test_workers_4_reproduces_serial_rows_exactly(self):
        serial = Sweep(_noisy_trial, GRID, trials=12, seed=42, workers=1).run()
        parallel = Sweep(_noisy_trial, GRID, trials=12, seed=42, workers=4).run()
        assert len(serial) == len(parallel)
        for row_s, row_p in zip(serial, parallel):
            assert row_s.params == row_p.params
            # Bit-identical, not approximately equal.
            assert row_s.estimate == row_p.estimate

    def test_odd_job_sizes_still_bit_identical(self):
        serial = Sweep(_noisy_trial, GRID, trials=9, seed=3).run()
        chopped = Sweep(
            _noisy_trial, GRID, trials=9, seed=3, workers=2, job_size=2
        ).run()
        for row_s, row_p in zip(serial, chopped):
            assert row_s.estimate == row_p.estimate

    def test_unpicklable_trial_falls_back_to_serial(self):
        offset = 5.0
        closure = lambda params, rng: offset + rng.random()  # noqa: E731
        rows = Sweep(closure, [{"p": 1}], trials=4, seed=9, workers=4).run()
        reference = Sweep(closure, [{"p": 1}], trials=4, seed=9).run()
        assert rows[0].estimate == reference[0].estimate

    def test_seed_streams_are_job_independent(self):
        """Trial (i, t) draws the same numbers whatever job holds it."""
        single_jobs = Sweep(_noisy_trial, GRID, trials=8, seed=7, job_size=8).run()
        tiny_jobs = Sweep(_noisy_trial, GRID, trials=8, seed=7, job_size=1).run()
        for row_a, row_b in zip(single_jobs, tiny_jobs):
            assert row_a.estimate == row_b.estimate
