"""Unit tests for the report-merge helper script."""

from __future__ import annotations

import importlib.util
import pathlib

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2]
    / "scripts"
    / "merge_experiment_sections.py"
)
spec = importlib.util.spec_from_file_location("merge_script", SCRIPT)
merge_script = importlib.util.module_from_spec(spec)
spec.loader.exec_module(merge_script)


MAIN = """# Report

intro text

### E01 — first

body one

### E03 — third

stale body
"""

PATCH = """# Patch header (discarded)

### E03 — third

fresh body

### E05 — fifth

new section
"""


class TestMerge:
    def test_replaces_and_appends_in_order(self):
        merged = merge_script.merge(MAIN, PATCH)
        assert "fresh body" in merged
        assert "stale body" not in merged
        assert "new section" in merged
        assert merged.index("### E01") < merged.index("### E03") < merged.index("### E05")

    def test_header_preserved(self):
        merged = merge_script.merge(MAIN, PATCH)
        assert merged.startswith("# Report")
        assert "Patch header" not in merged

    def test_split_roundtrip(self):
        header, sections, order = merge_script.split_report(MAIN)
        assert order == ["E01", "E03"]
        assert header.startswith("# Report")
        assert sections["E01"].startswith("### E01")

    def test_no_sections_passthrough(self):
        header, sections, order = merge_script.split_report("just text\n")
        assert header == "just text\n"
        assert sections == {}
        assert order == []
