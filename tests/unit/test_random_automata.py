"""Unit tests for the adversary automaton families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Action
from repro.errors import InvalidParameterError
from repro.markov.random_automata import (
    biased_walk_automaton,
    cycle_automaton,
    random_bounded_automaton,
    uniform_walk_automaton,
)


class TestRandomBoundedAutomaton:
    def test_state_count_and_start_label(self, rng):
        machine = random_bounded_automaton(rng, bits=3, ell=2)
        assert machine.n_states == 8
        assert machine.label(machine.start) is Action.ORIGIN

    def test_probability_floor_respected(self, rng):
        for _ in range(20):
            machine = random_bounded_automaton(rng, bits=2, ell=2)
            assert machine.min_positive_probability() >= 2.0**-2 - 1e-12

    def test_probabilities_are_dyadic_multiples(self, rng):
        ell = 3
        machine = random_bounded_automaton(rng, bits=2, ell=ell)
        quanta = machine.matrix * 2**ell
        np.testing.assert_allclose(quanta, np.round(quanta), atol=1e-9)

    def test_chi_accounting_bounded(self, rng):
        machine = random_bounded_automaton(rng, bits=3, ell=2)
        sc = machine.selection_complexity()
        assert sc.bits == 3
        assert sc.ell <= 2.0

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(InvalidParameterError):
            random_bounded_automaton(rng, bits=0, ell=1)
        with pytest.raises(InvalidParameterError):
            random_bounded_automaton(rng, bits=1, ell=0)
        with pytest.raises(InvalidParameterError):
            random_bounded_automaton(rng, bits=1, ell=1, none_fraction=1.0)

    def test_distinct_seeds_give_distinct_machines(self, rng_factory):
        a = random_bounded_automaton(rng_factory(1), bits=3, ell=2)
        b = random_bounded_automaton(rng_factory(2), bits=3, ell=2)
        assert not np.allclose(a.matrix, b.matrix)


class TestUniformWalkAutomaton:
    def test_structure(self):
        machine = uniform_walk_automaton()
        assert machine.n_states == 5
        assert machine.selection_complexity().chi == pytest.approx(4.0)

    def test_every_state_moves_uniformly(self):
        matrix = uniform_walk_automaton().matrix
        np.testing.assert_allclose(matrix[:, 1:], 0.25)
        np.testing.assert_allclose(matrix[:, 0], 0.0)


class TestBiasedWalkAutomaton:
    def test_quantization_preserves_total(self):
        machine = biased_walk_automaton([1, 2, 3, 4], ell=3)
        np.testing.assert_allclose(machine.matrix.sum(axis=1), 1.0)

    def test_exact_weights_pass_through(self):
        machine = biased_walk_automaton([2, 2, 2, 2], ell=3)
        np.testing.assert_allclose(machine.matrix[0, 1:], 0.25)

    def test_zero_weight_directions_absent(self):
        machine = biased_walk_automaton([1, 0, 0, 1], ell=1)
        row = machine.matrix[0]
        assert row[2] == 0.0 and row[3] == 0.0

    def test_rejects_bad_weights(self):
        with pytest.raises(InvalidParameterError):
            biased_walk_automaton([0, 0, 0, 0], ell=2)
        with pytest.raises(InvalidParameterError):
            biased_walk_automaton([1, 2, 3], ell=2)


class TestCycleAutomaton:
    def test_deterministic_cycle(self, rng):
        pattern = [Action.UP, Action.RIGHT, Action.DOWN, Action.LEFT]
        machine = cycle_automaton(pattern)
        assert machine.n_states == 5
        state = machine.start
        emitted = []
        for _ in range(8):
            state = machine.step(rng, state)
            emitted.append(machine.label(state))
        assert emitted == pattern * 2

    def test_rejects_origin_in_pattern(self):
        with pytest.raises(InvalidParameterError):
            cycle_automaton([Action.UP, Action.ORIGIN])

    def test_rejects_empty_pattern(self):
        with pytest.raises(InvalidParameterError):
            cycle_automaton([])
