"""Unit tests for the Markov-chain substrate (repro.markov)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError, InvalidParameterError
from repro.markov.chain import MarkovChain
from repro.markov.classify import (
    absorbing_probability_classes,
    classify_states,
    reachable_from,
    strongly_connected_components,
)
from repro.markov.coupling import (
    doeblin_epsilon,
    mixing_block_length,
    rosenthal_envelope,
    steps_for_tv_target,
)
from repro.markov.periodicity import class_period, cyclic_classes, is_aperiodic
from repro.markov.stationary import (
    cesaro_distribution,
    power_iteration_distribution,
    stationary_distribution,
    total_variation,
)


def two_state_chain(p: float = 0.3, q: float = 0.4) -> MarkovChain:
    """Ergodic two-state chain with stationary (q, p)/(p+q)."""
    return MarkovChain(np.array([[1 - p, p], [q, 1 - q]]))


def absorbing_chain() -> MarkovChain:
    """State 0 transient, states 1 and 2 each absorbing."""
    matrix = np.array(
        [
            [0.2, 0.5, 0.3],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    return MarkovChain(matrix)


def periodic_chain(t: int = 3) -> MarkovChain:
    """A deterministic t-cycle."""
    matrix = np.zeros((t, t))
    for i in range(t):
        matrix[i, (i + 1) % t] = 1.0
    return MarkovChain(matrix)


class TestMarkovChainBasics:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MarkovChain(np.array([[0.5, 0.4], [0.5, 0.5]]))
        with pytest.raises(InvalidParameterError):
            MarkovChain(np.array([[1.0]]), start=3)
        with pytest.raises(InvalidParameterError):
            MarkovChain(np.ones((2, 3)))
        with pytest.raises(InvalidParameterError):
            MarkovChain(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_basic_accessors(self):
        chain = two_state_chain()
        assert chain.n_states == 2
        assert chain.probability(0, 1) == pytest.approx(0.3)
        assert chain.successors(0).tolist() == [0, 1]
        assert chain.min_positive_probability() == pytest.approx(0.3)

    def test_power_and_distribution(self):
        chain = two_state_chain()
        p2 = chain.power(2)
        np.testing.assert_allclose(p2, chain.matrix @ chain.matrix)
        dist = chain.distribution_after(2)
        np.testing.assert_allclose(dist, p2[0])

    def test_distribution_after_custom_initial(self):
        chain = two_state_chain()
        initial = np.array([0.5, 0.5])
        dist = chain.distribution_after(1, initial)
        np.testing.assert_allclose(dist, initial @ chain.matrix)

    def test_distribution_rejects_bad_initial(self):
        chain = two_state_chain()
        with pytest.raises(InvalidParameterError):
            chain.distribution_after(1, np.array([0.9, 0.2]))

    def test_sampling_matches_matrix(self, rng):
        chain = two_state_chain(0.25, 0.75)
        successors = [chain.step(rng, 0) for _ in range(20_000)]
        assert np.mean(successors) == pytest.approx(0.25, abs=0.02)

    def test_step_many(self, rng):
        chain = two_state_chain(0.25, 0.75)
        out = chain.step_many(rng, np.zeros(20_000, dtype=np.int64))
        assert out.mean() == pytest.approx(0.25, abs=0.02)

    def test_sample_path(self, rng):
        path = two_state_chain().sample_path(rng, 100)
        assert path.shape == (100,)

    def test_restricted_to_closed_subset(self):
        chain = absorbing_chain()
        sub = chain.restricted_to([1])
        assert sub.n_states == 1

    def test_restricted_to_open_subset_rejected(self):
        chain = absorbing_chain()
        with pytest.raises(InvalidParameterError):
            chain.restricted_to([0, 1])


class TestClassification:
    def test_scc_on_dag(self):
        adjacency = np.array(
            [
                [False, True, False],
                [False, False, True],
                [False, False, False],
            ]
        )
        components = strongly_connected_components(adjacency)
        assert sorted(map(tuple, components)) == [(0,), (1,), (2,)]

    def test_scc_cycle(self):
        adjacency = np.array(
            [
                [False, True, False],
                [False, False, True],
                [True, False, False],
            ]
        )
        components = strongly_connected_components(adjacency)
        assert components == [[0, 1, 2]]

    def test_scc_reverse_topological_order(self):
        # 0 -> 1 -> 2; Tarjan emits sinks first.
        adjacency = np.array(
            [
                [False, True, False],
                [False, False, True],
                [False, False, False],
            ]
        )
        components = strongly_connected_components(adjacency)
        assert components[0] == [2]
        assert components[-1] == [0]

    def test_classify_absorbing(self):
        classification = classify_states(absorbing_chain())
        assert classification.transient_states == frozenset({0})
        assert set(classification.recurrent_classes) == {
            frozenset({1}),
            frozenset({2}),
        }
        assert classification.n_recurrent_classes == 2
        assert classification.is_recurrent(1)
        assert not classification.is_recurrent(0)
        assert classification.class_of(2) == frozenset({2})

    def test_classify_irreducible(self):
        classification = classify_states(two_state_chain())
        assert classification.transient_states == frozenset()
        assert classification.recurrent_classes == (frozenset({0, 1}),)

    def test_reachability(self):
        chain = absorbing_chain()
        assert reachable_from(chain, 0) == frozenset({0, 1, 2})
        assert reachable_from(chain, 1) == frozenset({1})

    def test_absorption_probabilities(self):
        chain = absorbing_chain()
        absorption = absorbing_probability_classes(chain)
        # From 0: each visit leaves with 0.5 to {1} vs 0.3 to {2};
        # conditioned on leaving, 5/8 and 3/8.
        assert absorption[frozenset({1})] == pytest.approx(5 / 8)
        assert absorption[frozenset({2})] == pytest.approx(3 / 8)

    def test_absorption_probabilities_no_transients(self):
        chain = two_state_chain()
        absorption = absorbing_probability_classes(chain)
        assert absorption[frozenset({0, 1})] == 1.0


class TestPeriodicity:
    def test_cycle_period(self):
        chain = periodic_chain(4)
        assert class_period(chain, [0, 1, 2, 3]) == 4
        assert not is_aperiodic(chain, [0, 1, 2, 3])

    def test_aperiodic_chain(self):
        chain = two_state_chain()
        assert class_period(chain, [0, 1]) == 1
        assert is_aperiodic(chain, [0, 1])

    def test_cyclic_classes_partition_and_advance(self):
        chain = periodic_chain(3)
        classes = cyclic_classes(chain, [0, 1, 2])
        assert sorted(sum(classes, [])) == [0, 1, 2]
        # One-step transitions advance class index by one (Theorem A.1).
        adjacency = chain.adjacency()
        index_of = {}
        for tau, group in enumerate(classes):
            for state in group:
                index_of[state] = tau
        for u in range(3):
            for v in np.flatnonzero(adjacency[u]):
                assert index_of[int(v)] == (index_of[u] + 1) % len(classes)

    def test_period_two_bipartite(self):
        matrix = np.array(
            [
                [0.0, 0.5, 0.5, 0.0],
                [0.5, 0.0, 0.0, 0.5],
                [0.5, 0.0, 0.0, 0.5],
                [0.0, 0.5, 0.5, 0.0],
            ]
        )
        chain = MarkovChain(matrix)
        assert class_period(chain, range(4)) == 2

    def test_empty_class_rejected(self):
        with pytest.raises(InvalidParameterError):
            class_period(two_state_chain(), [])


class TestStationary:
    def test_two_state_closed_form(self):
        p, q = 0.3, 0.4
        pi = stationary_distribution(two_state_chain(p, q))
        np.testing.assert_allclose(pi, [q / (p + q), p / (p + q)], atol=1e-10)

    def test_fixed_point_property(self):
        chain = two_state_chain(0.2, 0.7)
        pi = stationary_distribution(chain)
        np.testing.assert_allclose(pi @ chain.matrix, pi, atol=1e-10)

    def test_periodic_class_occupation_uniform(self):
        chain = periodic_chain(5)
        pi = stationary_distribution(chain)
        np.testing.assert_allclose(pi, np.full(5, 0.2), atol=1e-10)

    def test_restricted_to_class(self):
        chain = absorbing_chain()
        pi = stationary_distribution(chain, members=[1])
        np.testing.assert_allclose(pi, [0.0, 1.0, 0.0], atol=1e-12)

    def test_cesaro_agrees_with_solve(self):
        chain = periodic_chain(3)
        cesaro = cesaro_distribution(chain, steps=3000)
        pi = stationary_distribution(chain)
        assert total_variation(cesaro, pi) < 1e-3

    def test_power_iteration_agrees_with_solve(self):
        chain = two_state_chain(0.15, 0.55)
        via_power = power_iteration_distribution(chain)
        via_solve = stationary_distribution(chain)
        assert total_variation(via_power, via_solve) < 1e-6

    def test_total_variation_properties(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert total_variation(p, p) == 0.0
        assert total_variation(p, q) == pytest.approx(0.5)
        with pytest.raises(InvalidParameterError):
            total_variation(p, np.array([1.0, 0.0, 0.0]))


class TestCoupling:
    def test_doeblin_epsilon(self):
        chain = two_state_chain(0.25, 0.25)
        assert doeblin_epsilon(chain) == pytest.approx(0.25**2)

    def test_rosenthal_envelope_decreases(self):
        values = [rosenthal_envelope(k, 2, 0.3) for k in (0, 2, 4, 8)]
        assert values[0] == 1.0
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_envelope_dominates_measured_tv(self):
        """The Lemma A.2 bound must hold for an actual chain."""
        chain = two_state_chain(0.3, 0.45)
        pi = stationary_distribution(chain)
        epsilon = doeblin_epsilon(chain)
        k0 = chain.n_states
        for k in (2, 4, 8, 16):
            measured = total_variation(chain.distribution_after(k), pi)
            assert measured <= rosenthal_envelope(k, k0, epsilon) + 1e-12

    def test_mixing_block_length_positive_and_monotone(self):
        chain = two_state_chain()
        beta_small = mixing_block_length(chain, 16)
        beta_large = mixing_block_length(chain, 4096)
        assert 0 < beta_small < beta_large

    def test_steps_for_tv_target(self):
        chain = two_state_chain(0.5, 0.5)
        steps = steps_for_tv_target(chain, 1e-3)
        pi = stationary_distribution(chain)
        measured = total_variation(chain.distribution_after(steps), pi)
        assert measured <= 1e-3

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            rosenthal_envelope(-1, 1, 0.5)
        with pytest.raises(InvalidParameterError):
            rosenthal_envelope(1, 0, 0.5)
        with pytest.raises(InvalidParameterError):
            rosenthal_envelope(1, 1, 0.0)
