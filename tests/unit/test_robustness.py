"""Unit tests for repro.robustness (the chi metric's motivation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm1 import build_algorithm1_automaton
from repro.errors import InvalidParameterError
from repro.markov.random_automata import uniform_walk_automaton
from repro.robustness.perturbation import (
    degradation_ratio,
    expected_walk_length_under_noise,
    perturb_automaton,
    perturb_probability,
)


class TestPerturbProbability:
    def test_zero_noise_is_identity(self, rng):
        assert perturb_probability(0.25, 0.0, rng) == 0.25

    def test_stays_in_unit_interval(self, rng):
        for _ in range(500):
            assert 0.0 <= perturb_probability(0.01, 0.5, rng) <= 1.0

    def test_noise_is_additive_not_relative(self, rng):
        """The same eps moves a tiny bias relatively much more."""
        eps = 0.05
        fair = [perturb_probability(0.5, eps, rng) for _ in range(3000)]
        fine = [perturb_probability(0.01, eps, rng) for _ in range(3000)]
        relative_spread_fair = np.std(fair) / np.mean(fair)
        relative_spread_fine = np.std(fine) / np.mean(fine)
        assert relative_spread_fine > 5 * relative_spread_fair

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            perturb_probability(1.5, 0.1, rng)
        with pytest.raises(InvalidParameterError):
            perturb_probability(0.5, -0.1, rng)


class TestPerturbAutomaton:
    def test_rows_remain_stochastic(self, rng):
        noisy = perturb_automaton(build_algorithm1_automaton(16), 0.05, rng)
        np.testing.assert_allclose(noisy.matrix.sum(axis=1), 1.0, atol=1e-9)

    def test_zero_edges_stay_zero(self, rng):
        original = build_algorithm1_automaton(16)
        noisy = perturb_automaton(original, 0.05, rng)
        assert np.all(noisy.matrix[original.matrix == 0.0] == 0.0)

    def test_zero_noise_preserves_matrix(self, rng):
        original = uniform_walk_automaton()
        noisy = perturb_automaton(original, 0.0, rng)
        np.testing.assert_allclose(noisy.matrix, original.matrix)

    def test_labels_and_start_preserved(self, rng):
        original = build_algorithm1_automaton(8)
        noisy = perturb_automaton(original, 0.1, rng)
        assert noisy.labels == original.labels
        assert noisy.start == original.start

    def test_noise_actually_moves_probabilities(self, rng):
        original = uniform_walk_automaton()
        noisy = perturb_automaton(original, 0.1, rng)
        assert not np.allclose(noisy.matrix, original.matrix)

    def test_negative_noise_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            perturb_automaton(uniform_walk_automaton(), -0.1, rng)


class TestDegradation:
    def test_degradation_ratio(self):
        assert degradation_ratio(100.0, 250.0) == 2.5
        with pytest.raises(InvalidParameterError):
            degradation_ratio(0.0, 1.0)

    def test_walk_length_explodes_for_fine_coins(self, rng):
        """The Section 1 motivation: additive noise vs a 1/D coin."""
        fine = expected_walk_length_under_noise(1 / 256, 1 / 256, rng, 3000)
        coarse = expected_walk_length_under_noise(0.5, 1 / 256, rng, 3000)
        nominal_fine = 255.0
        nominal_coarse = 1.0
        assert fine / nominal_fine > 2.0  # explodes
        assert coarse / nominal_coarse == pytest.approx(1.0, abs=0.05)

    def test_walk_length_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            expected_walk_length_under_noise(0.5, 0.1, rng, 0)
