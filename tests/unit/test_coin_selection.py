"""Unit tests for repro.core.coin and repro.core.selection (Lemma 3.6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.coin import CompositeCoin, flip_base_coin
from repro.core.selection import (
    MemoryMeter,
    SelectionComplexity,
    chi_threshold,
    is_below_threshold,
)
from repro.errors import InvalidParameterError


class TestCompositeCoin:
    def test_tails_probability_is_exact_power(self):
        assert CompositeCoin(3, 2).tails_probability == 2.0**-6
        assert CompositeCoin(1, 1).tails_probability == 0.5

    @pytest.mark.parametrize("k,expected_bits", [(1, 0), (2, 1), (3, 2), (8, 3), (9, 4)])
    def test_memory_bits_match_lemma(self, k, expected_bits):
        assert CompositeCoin(k, 1).memory_bits == expected_bits

    def test_for_target_probability(self):
        coin = CompositeCoin.for_target_probability(ell=2, target_exponent=7)
        assert coin.k == 4  # ceil(7/2)
        assert coin.tails_probability <= 2.0**-7

    def test_for_target_probability_exact_divisor(self):
        coin = CompositeCoin.for_target_probability(ell=3, target_exponent=6)
        assert coin.k == 2
        assert coin.tails_probability == 2.0**-6

    def test_flip_empirical_rate(self, rng):
        coin = CompositeCoin(2, 1)  # tails probability 1/4
        flips = sum(coin.flip(rng) for _ in range(40_000))
        assert flips / 40_000 == pytest.approx(0.25, abs=0.01)

    def test_flip_fast_empirical_rate(self, rng):
        coin = CompositeCoin(3, 1)  # tails probability 1/8
        flips = sum(coin.flip_fast(rng) for _ in range(40_000))
        assert flips / 40_000 == pytest.approx(0.125, abs=0.01)

    def test_faithful_and_fast_flip_agree_statistically(self, rng_factory):
        coin = CompositeCoin(2, 2)
        slow_rng = rng_factory(1)
        fast_rng = rng_factory(2)
        slow = np.mean([coin.flip(slow_rng) for _ in range(30_000)])
        fast = np.mean([coin.flip_fast(fast_rng) for _ in range(30_000)])
        assert slow == pytest.approx(fast, abs=0.01)

    def test_geometric_heads_run_mean(self, rng):
        coin = CompositeCoin(3, 1)  # p = 1/8, mean run = 7
        runs = [coin.geometric_heads_run(rng) for _ in range(20_000)]
        assert np.mean(runs) == pytest.approx(7.0, rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            CompositeCoin(0, 1)
        with pytest.raises(InvalidParameterError):
            CompositeCoin(1, 0)
        with pytest.raises(InvalidParameterError):
            CompositeCoin.for_target_probability(1, 0)

    def test_base_coin_rate(self, rng):
        flips = sum(flip_base_coin(rng, 2) for _ in range(40_000))
        assert flips / 40_000 == pytest.approx(0.25, abs=0.01)

    def test_base_coin_rejects_bad_ell(self, rng):
        with pytest.raises(InvalidParameterError):
            flip_base_coin(rng, 0)

    def test_memory_meter_layout(self):
        meter = CompositeCoin(6, 1).memory_meter()
        assert meter.bits == 3
        assert meter.n_states == 6


class TestSelectionComplexity:
    def test_chi_formula(self):
        sc = SelectionComplexity(bits=5, ell=4.0)
        assert sc.chi == 7.0

    def test_ell_one_contributes_nothing(self):
        assert SelectionComplexity(bits=3, ell=1.0).chi == 3.0

    def test_invalid_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            SelectionComplexity(bits=-1, ell=1.0)
        with pytest.raises(InvalidParameterError):
            SelectionComplexity(bits=1, ell=0.5)

    def test_threshold_values(self):
        assert chi_threshold(16) == pytest.approx(2.0)
        assert chi_threshold(256) == pytest.approx(3.0)
        assert chi_threshold(2**16) == pytest.approx(4.0)

    def test_threshold_monotone(self):
        values = [chi_threshold(d) for d in (8, 64, 1024, 1 << 20)]
        assert values == sorted(values)

    def test_threshold_rejects_tiny_distance(self):
        with pytest.raises(InvalidParameterError):
            chi_threshold(1)

    def test_is_below_threshold(self):
        assert is_below_threshold(1.0, 256)
        assert not is_below_threshold(4.0, 256)
        assert not is_below_threshold(2.5, 256, margin=1.0)


class TestMemoryMeter:
    def test_bits_sum_of_register_logs(self):
        meter = MemoryMeter().declare("a", 5).declare("b", 2).declare("c", 1)
        assert meter.bits == 3 + 1 + 0
        assert meter.n_states == 10

    def test_redeclare_widens(self):
        meter = MemoryMeter().declare("a", 2).declare("a", 9)
        assert meter.registers["a"] == 9
        assert meter.bits == 4

    def test_redeclare_never_narrows(self):
        meter = MemoryMeter().declare("a", 9).declare("a", 2)
        assert meter.registers["a"] == 9

    def test_rejects_empty_register(self):
        with pytest.raises(InvalidParameterError):
            MemoryMeter().declare("a", 0)

    def test_chaining_returns_self(self):
        meter = MemoryMeter()
        assert meter.declare("x", 2) is meter
