"""Unit tests for the simulation service layer: specs, registry, backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim import simulate
from repro.sim.backends import (
    AlgorithmSpec,
    BackendError,
    KNOWN_ALGORITHMS,
    SimulationRequest,
    get_backend,
    probe_request,
    registered_backends,
    resolve_backend,
)
from repro.sim.fast import fast_algorithm1
from repro.sim.rng import derive_seed


def _request(spec=None, **overrides):
    defaults = dict(
        algorithm=spec or AlgorithmSpec.algorithm1(8),
        n_agents=2,
        target=(5, 3),
        move_budget=100_000,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationRequest(**defaults)


class TestAlgorithmSpec:
    def test_constructors_validate(self):
        with pytest.raises(InvalidParameterError):
            AlgorithmSpec.algorithm1(1)
        with pytest.raises(InvalidParameterError):
            AlgorithmSpec.nonuniform(8, 0)
        with pytest.raises(InvalidParameterError):
            AlgorithmSpec.uniform(0)

    def test_uniform_defaults_to_calibrated_K(self):
        from repro.core.uniform import calibrated_K

        assert AlgorithmSpec.uniform(2).K == calibrated_K(2)

    def test_build_constructs_the_right_classes(self):
        from repro.baselines.feinerman import FeinermanSearch
        from repro.core.algorithm1 import Algorithm1
        from repro.core.nonuniform import NonUniformSearch
        from repro.core.uniform import UniformSearch

        assert isinstance(AlgorithmSpec.algorithm1(8).build(2), Algorithm1)
        assert isinstance(AlgorithmSpec.nonuniform(8, 1).build(2), NonUniformSearch)
        built = AlgorithmSpec.uniform(1).build(4)
        assert isinstance(built, UniformSearch)
        assert built.n_agents == 4
        assert isinstance(AlgorithmSpec.feinerman().build(3), FeinermanSearch)

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = AlgorithmSpec.nonuniform(16, 2)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(AlgorithmSpec.nonuniform(16, 2))


class TestRequestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            _request(n_agents=0)
        with pytest.raises(InvalidParameterError):
            _request(move_budget=0)
        with pytest.raises(InvalidParameterError):
            _request(n_trials=0)
        with pytest.raises(InvalidParameterError):
            _request(seed=-1)

    def test_distance_bound_defaults(self):
        assert _request().effective_distance_bound == 8
        assert _request(target=(40, 3)).effective_distance_bound == 40
        assert _request(distance_bound=64).effective_distance_bound == 64

    def test_trial_seed_matches_derive_seed(self):
        request = _request(seed=9, seed_keys=(3, 4))
        ours = np.random.default_rng(request.trial_seed(5)).random()
        direct = np.random.default_rng(derive_seed(9, 3, 4, 5)).random()
        assert ours == direct


class TestRegistry:
    def test_four_backends_registered(self):
        names = set(registered_backends())
        assert {"reference", "closed_form", "batched", "accelerator"} <= names

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            get_backend("warp-drive")

    def test_auto_prefers_batched_for_trial_batches(self):
        assert resolve_backend(_request(n_trials=50)).name == "batched"

    def test_auto_prefers_batched_for_every_covered_algorithm_batch(self):
        """Trial batches of all six families resolve to the batch pass."""
        specs = (
            AlgorithmSpec.algorithm1(8),
            AlgorithmSpec.nonuniform(8, 1),
            AlgorithmSpec.uniform(1),
            AlgorithmSpec.doubly_uniform(1),
            AlgorithmSpec.random_walk(),
            AlgorithmSpec.feinerman(),
        )
        for spec in specs:
            assert resolve_backend(_request(spec, n_trials=50)).name == "batched"
            assert resolve_backend(_request(spec)).name == "closed_form"

    def test_auto_prefers_closed_form_for_single_trials(self):
        assert resolve_backend(_request()).name == "closed_form"

    def test_auto_falls_back_to_reference(self):
        assert resolve_backend(_request(AlgorithmSpec.spiral())).name == "reference"
        assert (
            resolve_backend(_request(step_budget=10_000)).name == "reference"
        )

    def test_explicit_unsupported_backend_errors(self):
        with pytest.raises(BackendError):
            resolve_backend(_request(AlgorithmSpec.spiral()), "batched")

    def test_explicit_unsupported_backend_error_carries_the_reason(self):
        """The BackendError message propagates support_reason verbatim."""
        with pytest.raises(BackendError) as excinfo:
            resolve_backend(_request(AlgorithmSpec.spiral()), "batched")
        assert "no batch kernel" in str(excinfo.value)
        with pytest.raises(BackendError) as excinfo:
            resolve_backend(_request(step_budget=500), "batched")
        assert "step_budget" in str(excinfo.value)

    def test_auto_tie_break_is_deterministic_by_name(self):
        """Equal auto_priority ties resolve by name — repeatably.

        Run in fresh interpreters (twice) so the stub registrations
        can't leak into this process's registry: two stubs sharing the
        top priority must always resolve to the lexicographically
        larger name, whatever their registration order.
        """
        import os
        import subprocess
        import sys

        code = (
            "from repro.sim.backends import register_backend, "
            "resolve_backend, probe_request\n"
            "from repro.sim.backends.base import SimulationBackend\n"
            "class Stub(SimulationBackend):\n"
            "    def __init__(self, name): self.name = name\n"
            "    def supports(self, request): return True\n"
            "    def run(self, request, trial_indices=None): return ()\n"
            "    def auto_priority(self, request): return 1000\n"
            "register_backend(Stub('tie-{0}'))\n"
            "register_backend(Stub('tie-{1}'))\n"
            "req = probe_request('algorithm1', n_trials=50)\n"
            "print(resolve_backend(req).name)\n"
        )
        for order in (("a", "b"), ("b", "a")):
            script = code.format(*order)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=dict(os.environ),
            )
            assert result.returncode == 0, result.stderr
            assert result.stdout.strip() == "tie-b", (
                f"registration order {order} broke the name tie-break"
            )

    def test_supporting_backends_orders_by_static_rank(self):
        from repro.sim.backends.registry import supporting_backends

        request = _request(n_trials=50)
        candidates = supporting_backends(request)
        names = [backend.name for backend in candidates]
        # Deterministic: descending priority, name tie-break; the head
        # is exactly what "auto" resolves to.
        assert names[0] == resolve_backend(request).name
        priorities = [b.auto_priority(request) for b in candidates]
        assert priorities == sorted(priorities, reverse=True)
        assert candidates == supporting_backends(request)

    def test_selector_static_fallback_without_profile(self):
        """No calibration profile -> plan_request mirrors resolve_backend."""
        from repro.sim.selector import plan_request

        for request in (
            _request(n_trials=50),
            _request(),
            _request(AlgorithmSpec.spiral()),
            _request(step_budget=10_000),
        ):
            plan = plan_request(request, workers=1, profile=None)
            assert plan.source == "static"
            assert plan.predicted_seconds is None
            assert plan.backend == resolve_backend(request).name

    def test_selector_static_fallback_keeps_historical_sharding(self):
        from repro.sim.selector import plan_request

        plan = plan_request(_request(n_trials=50), workers=4, profile=None)
        assert (plan.n_shards, plan.workers) == (4, 4)
        single = plan_request(_request(), workers=4, profile=None)
        assert single.n_shards == 1

    def test_get_backend_works_in_fresh_interpreter(self):
        """Built-ins must load lazily on *any* first registry call."""
        import os
        import subprocess
        import sys

        code = (
            "from repro.sim.backends import get_backend; "
            "print(get_backend('reference').name)"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=dict(os.environ),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "reference"

    def test_custom_backend_registration_keeps_builtins(self):
        """Registering a custom backend first must not suppress defaults."""
        import os
        import subprocess
        import sys

        code = (
            "from repro.sim.backends import register_backend, "
            "registered_backends\n"
            "from repro.sim.backends.base import SimulationBackend\n"
            "class Null(SimulationBackend):\n"
            "    name = 'null-test'\n"
            "    def supports(self, request): return False\n"
            "    def run(self, request, trial_indices=None): return ()\n"
            "register_backend(Null())\n"
            "print(sorted(registered_backends()))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=dict(os.environ),
        )
        assert result.returncode == 0, result.stderr
        for name in ("reference", "closed_form", "batched", "null-test"):
            assert name in result.stdout

    def test_coverage_report_shape(self):
        coverage = get_backend("reference").coverage()
        assert set(coverage) == set(KNOWN_ALGORITHMS)
        assert all(coverage.values())
        batched = get_backend("batched").coverage()
        for name in (
            "algorithm1", "nonuniform", "uniform",
            "doubly-uniform", "random-walk", "feinerman",
        ):
            assert batched[name], f"batched must cover {name}"
        assert not batched["spiral"] and not batched["levy"]

    def test_decline_reasons_explain_gating(self):
        """supports() declines carry a human-readable reason string."""
        batched = get_backend("batched")
        reasons = batched.decline_reasons()
        assert "spiral" in reasons and "kernel" in reasons["spiral"]
        assert batched.support_reason(_request()) is None
        budgeted = _request(step_budget=1000)
        assert "step_budget" in batched.support_reason(budgeted)
        # closed_form's step-budget decline names the actual gate, not
        # a bogus unsupported-algorithm claim.
        assert "step_budget" in get_backend("closed_form").support_reason(
            budgeted
        )
        # The reference engine supports everything: no reasons at all.
        assert get_backend("reference").decline_reasons() == {}

    def test_supports_and_reason_agree_everywhere(self):
        """Invariant: supports(r) <=> support_reason(r) is None."""
        probes = [
            probe_request(name) for name in KNOWN_ALGORITHMS
        ] + [_request(), _request(step_budget=500), _request(n_trials=50)]
        for backend in registered_backends().values():
            for probe in probes:
                if probe is None:
                    continue
                assert backend.supports(probe) == (
                    backend.support_reason(probe) is None
                ), (backend.name, probe.algorithm.name)


class TestAcceleratorBackend:
    """Device gating: decline cleanly without hardware, run with it."""

    @pytest.fixture(autouse=True)
    def _fresh_probe(self):
        """Re-probe around each test; leave the process memo clean."""
        from repro.sim.kernels.xp import _reset_accelerator_cache

        _reset_accelerator_cache()
        yield
        _reset_accelerator_cache()

    def test_declines_with_reason_when_no_device(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANTS_ACCELERATOR", "off")
        backend = get_backend("accelerator")
        request = _request(n_trials=50)
        assert not backend.supports(request)
        reason = backend.support_reason(request)
        assert reason is not None and "disabled" in reason

    def test_auto_falls_back_to_batched_without_device(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANTS_ACCELERATOR", "off")
        assert resolve_backend(_request(n_trials=50)).name == "batched"

    def test_explicit_selection_without_device_is_a_clear_error(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ANTS_ACCELERATOR", "off")
        with pytest.raises(BackendError) as excinfo:
            resolve_backend(_request(n_trials=50), "accelerator")
        assert "disabled" in str(excinfo.value)

    def test_no_device_reason_names_the_missing_namespaces(self, monkeypatch):
        """The default probe (no override) explains what's missing."""
        monkeypatch.delenv("REPRO_ANTS_ACCELERATOR", raising=False)
        backend = get_backend("accelerator")
        request = _request(n_trials=50)
        if backend.supports(request):  # pragma: no cover - GPU host
            pytest.skip("host actually has a device")
        assert "no device" in backend.support_reason(request)

    def test_cache_identity_carries_the_binding(self, monkeypatch):
        """Accelerator cache keys must name the bound namespace/device,
        so flipping bindings can never replay another binding's stream."""
        monkeypatch.setenv("REPRO_ANTS_ACCELERATOR", "off")
        backend = get_backend("accelerator")
        assert backend.cache_name() == "accelerator:unbound"
        # Plain backends keep their registry name as the identity.
        assert get_backend("batched").cache_name() == "batched"

    def test_torch_cpu_override_cache_identity(self, monkeypatch):
        pytest.importorskip("torch")
        monkeypatch.setenv("REPRO_ANTS_ACCELERATOR", "torch-cpu")
        assert (
            get_backend("accelerator").cache_name()
            == "accelerator:torch:cpu"
        )

    def test_torch_cpu_override_runs_end_to_end(self, monkeypatch):
        """REPRO_ANTS_ACCELERATOR=torch-cpu makes the backend servable
        (the CI parity leg) without outranking the NumPy batch path."""
        pytest.importorskip("torch")
        monkeypatch.setenv("REPRO_ANTS_ACCELERATOR", "torch-cpu")
        backend = get_backend("accelerator")
        request = _request(n_trials=16, move_budget=200_000)
        assert backend.supports(request)
        # Host binding never shadows the tuned NumPy path in auto mode.
        assert resolve_backend(request).name == "batched"
        result = simulate(request, backend="accelerator", cache=False)
        assert len(result.outcomes) == 16
        assert result.find_rate > 0
        for outcome in result.outcomes:
            assert outcome.stats is not None
            if outcome.found:
                assert 0 < outcome.m_moves <= 200_000
        assert "torch:cpu" in backend.device_description()


class TestBackendsRun:
    def test_closed_form_bit_identical_to_direct_fast_call(self):
        request = _request(n_trials=4, seed=11, seed_keys=(2,))
        facade = simulate(request, backend="closed_form")
        direct = [
            fast_algorithm1(
                8, 2, (5, 3),
                np.random.default_rng(derive_seed(11, 2, trial)),
                100_000,
            ).moves_or_budget
            for trial in range(4)
        ]
        assert list(facade.moves_or_budget()) == direct

    def test_reference_backend_reports_steps_and_agents(self):
        result = simulate(_request(move_budget=500_000), backend="reference")
        outcome = result.outcome
        assert outcome.found
        assert outcome.m_steps is not None
        assert len(outcome.per_agent) == 2

    def test_batched_backend_runs_all_supported_algorithms(self):
        for spec in (
            AlgorithmSpec.algorithm1(8),
            AlgorithmSpec.nonuniform(8, 1),
            AlgorithmSpec.uniform(1),
            AlgorithmSpec.doubly_uniform(1),
            AlgorithmSpec.random_walk(),
            AlgorithmSpec.feinerman(),
        ):
            result = simulate(
                _request(spec, n_trials=8, move_budget=500_000), backend="batched"
            )
            assert len(result.outcomes) == 8
            assert result.find_rate > 0
            for outcome in result.outcomes:
                if outcome.found:
                    assert 0 < outcome.m_moves <= 500_000
                    assert 0 <= outcome.finder < 2

    def test_batched_deterministic_per_request(self):
        request = _request(n_trials=6, seed=123)
        a = simulate(request, backend="batched").moves_or_budget()
        b = simulate(request, backend="batched").moves_or_budget()
        assert list(a) == list(b)

    def test_batched_empty_shard_returns_empty(self):
        backend = get_backend("batched")
        assert backend.run(_request(n_trials=4), trial_indices=[]) == ()

    def test_batched_origin_target(self):
        result = simulate(
            _request(target=(0, 0), n_trials=3), backend="batched"
        )
        assert all(o.found and o.m_moves == 0 for o in result.outcomes)

    def test_workers_shard_is_bit_identical_for_per_trial_backends(self):
        request = _request(n_trials=10, seed=5)
        serial = simulate(request, backend="closed_form", workers=1)
        sharded = simulate(request, backend="closed_form", workers=3)
        assert list(serial.moves_or_budget()) == list(sharded.moves_or_budget())
        assert [o.finder for o in serial.outcomes] == [
            o.finder for o in sharded.outcomes
        ]

    def test_simulation_result_accessors(self):
        result = simulate(_request(n_trials=5))
        assert result.outcome is result.outcomes[0]
        assert 0.0 <= result.find_rate <= 1.0
        assert result.moves_or_budget().shape == (5,)


class TestFastRunStats:
    def test_closed_form_outcomes_carry_stats(self):
        result = simulate(_request(n_trials=2), backend="closed_form")
        for outcome in result.outcomes:
            assert outcome.stats is not None
            assert outcome.stats.iterations_executed > 0
            assert outcome.stats.rounds_executed > 0

    def test_batched_outcomes_carry_per_trial_stats(self):
        result = simulate(_request(n_trials=16, seed=3), backend="batched")
        for outcome in result.outcomes:
            stats = outcome.stats
            assert stats is not None
            # Every colony executed at least one round of its own pairs.
            assert stats.rounds_executed >= 1
            assert stats.iterations_executed >= stats.rounds_executed
            # A colony's pairs can't execute more than agents-per-round.
            assert stats.iterations_executed <= 2 * stats.rounds_executed
        # Per colony, not one shared batch record: colonies that retire
        # early must show fewer rounds than long-running ones.
        rounds = {o.stats.rounds_executed for o in result.outcomes}
        assert len(rounds) > 1

    def test_batched_per_trial_stats_for_every_algorithm(self):
        for spec in (
            AlgorithmSpec.doubly_uniform(1),
            AlgorithmSpec.random_walk(),
            AlgorithmSpec.feinerman(),
        ):
            result = simulate(
                _request(spec, n_trials=6, move_budget=200_000),
                backend="batched",
            )
            for outcome in result.outcomes:
                assert outcome.stats is not None
                assert outcome.stats.iterations_executed > 0
                assert outcome.stats.rounds_executed > 0

    def test_uniform_and_walk_simulators_populate_stats(self):
        from repro.sim.fast import fast_random_walk, fast_uniform

        rng = np.random.default_rng(0)
        walk = fast_random_walk(2, (2, 1), rng, 10_000)
        assert walk.stats is not None and walk.stats.rounds_executed >= 1
        uni = fast_uniform(2, 1, 2, (3, 3), np.random.default_rng(1), 500_000)
        assert uni.stats is not None and uni.stats.iterations_executed > 0

    def test_reference_outcomes_have_no_stats(self):
        result = simulate(_request(), backend="reference")
        assert result.outcome.stats is None
