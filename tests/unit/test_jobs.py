"""Unit tests for the async job layer (``repro.sim.jobs``).

The contracts under test:

* ``simulate()`` is a thin view over the job layer — its outcomes are
  bit-identical to running the resolved backend directly (the
  pre-refactor behavior) for the per-trial backends;
* ``simulate_async().iter_results()`` streams completed trial shards
  incrementally, including cache-served ones;
* every finished shard is written through to the cache, so a killed or
  cancelled job/sweep resumes from cache with **zero** backend runs for
  the work already done — proven with ``backend_run_count()``;
* cancellation mid-sweep leaves the cache consistent: only complete
  shard/point entries exist, and the union of the runs before and
  after cancellation covers the grid exactly once.
"""

from __future__ import annotations

import pytest

import repro.sim.cache as cache_module
from repro.errors import InvalidParameterError, JobCancelledError
from repro.sim import (
    AlgorithmSpec,
    JobState,
    SimulationRequest,
    SimulationTrial,
    Sweep,
    simulate,
    simulate_async,
)
from repro.sim.backends.registry import get_backend
from repro.sim.cache import cache_key, configure_cache, shard_cache_key
from repro.sim.jobs import (
    get_manager,
    ledger_dir,
    prune_job_records,
    read_job_records,
    request_cancel,
)
from repro.sim.service import backend_run_count


def _request(**overrides):
    defaults = dict(
        algorithm=AlgorithmSpec.algorithm1(8),
        n_agents=2,
        target=(5, 3),
        move_budget=100_000,
        n_trials=6,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationRequest(**defaults)


GRID = [{"D": 8}, {"D": 10}, {"D": 12}, {"D": 14}]


def _factory(params):
    distance = int(params["D"])
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(distance),
        n_agents=2,
        target=(distance, distance),
        move_budget=100_000,
    )


@pytest.fixture
def fresh_cache(tmp_path):
    """A private cache installed as the process default (see test_cache)."""
    cache = configure_cache(directory=tmp_path, max_memory_entries=64)
    cache.clear()
    yield cache
    configure_cache(
        directory=cache_module.default_cache_dir(), max_memory_entries=256
    )


class TestThinWrapper:
    """simulate() must add nothing to what the backend computes."""

    @pytest.mark.parametrize("backend", ["closed_form", "reference"])
    def test_simulate_bit_identical_to_direct_backend_run(self, backend):
        request = _request(n_trials=4, move_budget=200_000)
        direct = get_backend(backend).run(request)
        via_facade = simulate(request, backend=backend, cache=False)
        assert via_facade.outcomes == direct
        assert via_facade.backend == backend

    def test_sharded_simulate_bit_identical_to_serial(self):
        request = _request(n_trials=7)
        serial = simulate(request, backend="closed_form", cache=False)
        sharded = simulate(
            request, backend="closed_form", workers=3, cache=False
        )
        assert serial.outcomes == sharded.outcomes

    def test_validation_raises_at_the_call_site(self):
        with pytest.raises(InvalidParameterError):
            simulate_async(_request(), workers=0)


class TestJobLifecycle:
    def test_job_reaches_done_with_full_progress(self, fresh_cache):
        job = simulate_async(_request(seed=21), backend="closed_form")
        result = job.result(timeout=60)
        assert job.state is JobState.DONE
        assert job.done()
        progress = job.progress()
        assert progress.done_shards == progress.total_shards
        assert progress.done_trials == progress.total_trials == 6
        assert len(result.outcomes) == 6

    def test_iter_results_streams_every_shard_exactly_once(self, fresh_cache):
        request = _request(seed=22, n_trials=8)
        job = simulate_async(request, backend="closed_form", workers=2)
        shards = list(job.iter_results())
        assert len(shards) == 2
        covered = sorted(
            index for shard in shards for index in shard.trial_indices
        )
        assert covered == list(range(8))
        assert all(not shard.from_cache for shard in shards)
        # Replaying the iterator after completion sees the same shards.
        assert [s.shard_index for s in job.iter_results()] == [
            s.shard_index for s in shards
        ]

    def test_cached_job_streams_one_cached_shard(self, fresh_cache):
        request = _request(seed=23)
        simulate(request, backend="closed_form")
        before = backend_run_count()
        job = simulate_async(request, backend="closed_form")
        shards = list(job.iter_results())
        assert backend_run_count() == before
        assert len(shards) == 1 and shards[0].from_cache
        assert job.progress().cached_shards == 1

    def test_unsupported_backend_fails_at_submit_time(self, fresh_cache):
        from repro.sim.backends.base import BackendError

        with pytest.raises(BackendError):
            simulate_async(
                SimulationRequest(
                    algorithm=AlgorithmSpec.spiral(),
                    n_agents=1, target=(4, 4), move_budget=1000,
                ),
                backend="batched",
            )

    def test_failed_job_raises_from_result_and_iter(
        self, fresh_cache, monkeypatch
    ):
        backend = get_backend("closed_form")

        def boom(request, trial_indices=None):
            raise RuntimeError("backend exploded")

        monkeypatch.setattr(backend, "run", boom)
        job = simulate_async(
            _request(seed=25), backend="closed_form", cache=False
        )
        with pytest.raises(RuntimeError, match="backend exploded"):
            job.result(timeout=60)
        assert job.state is JobState.FAILED
        assert isinstance(job.exception(), RuntimeError)
        with pytest.raises(RuntimeError, match="backend exploded"):
            list(job.iter_results())

    def test_ledger_records_the_job(self, fresh_cache):
        import time

        job = simulate_async(_request(seed=24), backend="closed_form")
        job.result(timeout=60)
        # The terminal ledger write is asynchronous wrt result(); give
        # the driver thread a moment to flush it.
        deadline = time.time() + 5.0
        mine = []
        while time.time() < deadline:
            mine = [
                r for r in read_job_records() if r["job_id"] == job.job_id
            ]
            if mine and mine[0]["state"] == "done":
                break
            time.sleep(0.05)
        assert mine and mine[0]["state"] == "done"
        assert ledger_dir().joinpath(f"{job.job_id}.json").exists()


class TestResumeFromCache:
    def test_resubmission_runs_zero_backend_executions(self, fresh_cache):
        request = _request(seed=31, n_trials=8)
        simulate_async(request, backend="closed_form", workers=2).result(60)
        before = backend_run_count()
        resumed = simulate_async(request, backend="closed_form", workers=2)
        result = resumed.result(timeout=60)
        assert backend_run_count() == before
        assert len(result.outcomes) == 8

    def test_partial_shards_resume_with_only_missing_work(self, fresh_cache):
        """Kill simulation: drop the full entry and one shard entry."""
        request = _request(seed=32, n_trials=8)
        full = simulate_async(
            request, backend="closed_form", workers=2
        ).result(60)
        # Simulate a killed job: the assembled full-request entry and
        # one of the two shard entries never got written.
        fresh_cache.clear(memory=True, disk=False)
        full_key = cache_key(request, "closed_form")
        lost_shard_key = shard_cache_key(request, "closed_form", 0, 4)
        for key in (full_key, lost_shard_key):
            path = fresh_cache._path_for(key)
            assert path.exists()
            path.unlink()
        before = backend_run_count()
        resumed = simulate_async(request, backend="closed_form", workers=2)
        shards = list(resumed.iter_results())
        # Exactly one backend run: the lost shard; the survivor shard
        # came from cache.
        assert backend_run_count() == before + 1
        assert sorted(s.from_cache for s in shards) == [False, True]
        assert resumed.result(timeout=60).outcomes == full.outcomes

    def test_resumed_outcomes_bit_identical_to_uninterrupted(self, fresh_cache):
        request = _request(seed=33, n_trials=9)
        uninterrupted = simulate(
            request, backend="closed_form", workers=3, cache=False
        )
        resumed = simulate(request, backend="closed_form", workers=3)
        assert resumed.outcomes == uninterrupted.outcomes


class TestSweepJobs:
    def test_sweep_handle_streams_rows_in_grid_order(self, fresh_cache):
        sweep = Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID, trials=4, seed=41,
        )
        reference = Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID, trials=4, seed=41,
        ).run()
        handle = sweep.submit()
        streamed = list(handle.iter_rows())
        assert [index for index, _ in streamed] == list(range(len(GRID)))
        assert [row.estimate for _, row in streamed] == [
            row.estimate for row in reference
        ]
        progress = handle.progress()
        assert progress.state is JobState.DONE
        assert progress.done_points == len(GRID)
        assert progress.done_trials == len(GRID) * 4

    def test_sweep_progress_callback_fires_per_point(self, fresh_cache):
        seen = []
        Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID, trials=3, seed=42,
        ).run(progress=seen.append)
        assert len(seen) == len(GRID)
        assert seen[-1].done_points == len(GRID)
        assert [p.done_points for p in seen] == sorted(
            p.done_points for p in seen
        )

    def test_cancelled_sweep_resumes_with_no_rework(self, fresh_cache):
        """Cancellation leaves only complete point entries in the cache,
        and the resumed sweep simulates exactly the missing points."""
        trial = SimulationTrial(_factory, backend="closed_form")
        sweep = Sweep(trial, GRID, trials=4, seed=43)
        reference = [
            row.estimate
            for row in Sweep(trial, GRID, trials=4, seed=43).run()
        ]
        fresh_cache.clear()

        before = backend_run_count()
        handle = sweep.submit()
        rows = handle.iter_rows()
        next(rows)  # at least one point landed (and is cached)
        assert handle.cancel()
        with pytest.raises(JobCancelledError):
            handle.result(timeout=60)
        assert handle.state is JobState.CANCELLED
        first_runs = backend_run_count() - before

        resumed = Sweep(trial, GRID, trials=4, seed=43).run()
        second_runs = backend_run_count() - before - first_runs
        # Every point simulated exactly once across both attempts: the
        # cancelled run's completed points were served from cache.
        assert first_runs + second_runs == len(GRID)
        assert first_runs >= 1
        assert [row.estimate for row in resumed] == reference

    def test_cancel_after_completion_returns_false(self, fresh_cache):
        handle = Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID[:2], trials=2, seed=44,
        ).submit()
        handle.result(timeout=60)
        assert handle.cancel() is False

    def test_submit_rejects_plain_trial_sweeps(self):
        with pytest.raises(InvalidParameterError):
            Sweep(lambda params, rng: 0.0, GRID, trials=2, seed=1).submit()


class TestManagerAndCancellation:
    def test_manager_registry_tracks_jobs(self, fresh_cache):
        manager = get_manager()
        job = manager.submit(_request(seed=51), backend="closed_form")
        assert manager.get(job.job_id) is job
        assert job in manager.jobs()
        job.result(timeout=60)

    def test_request_cancel_reaches_in_process_jobs(self, fresh_cache):
        job = simulate_async(_request(seed=52), backend="closed_form")
        request_cancel(job.job_id)
        assert job.cancel_requested() or job.done()
        # Whichever side won the race, the terminal state is coherent.
        try:
            job.result(timeout=60)
            assert job.state is JobState.DONE
        except JobCancelledError:
            assert job.state is JobState.CANCELLED

    def test_request_cancel_rejects_unknown_and_finished_jobs(
        self, fresh_cache
    ):
        assert request_cancel("job-nonexistent") is False
        assert not ledger_dir().joinpath("job-nonexistent.cancel").exists()
        job = simulate_async(_request(seed=54), backend="closed_form")
        job.result(timeout=60)
        assert request_cancel(job.job_id) is False

    def test_prune_job_records_bounds_the_ledger(self, fresh_cache):
        jobs = [
            simulate_async(_request(seed=60 + i), backend="closed_form")
            for i in range(4)
        ]
        for job in jobs:
            job.result(timeout=60)
        get_manager().close()  # flush terminal records
        # An orphan marker with no live job behind it.
        ledger_dir().joinpath("job-orphan.cancel").touch()
        before = len(read_job_records())
        assert before >= 4
        prune_job_records(max_records=2)
        remaining = read_job_records()
        assert len(remaining) == 2
        # Newest records survive.
        assert remaining[0]["submitted_at"] >= remaining[-1]["submitted_at"]
        assert not ledger_dir().joinpath("job-orphan.cancel").exists()

    def test_cancelled_job_raises_job_cancelled_error(self, fresh_cache):
        # A many-shard job over the pool gives cancel() room to land.
        request = _request(seed=53, n_trials=64, move_budget=5_000_000)
        job = simulate_async(request, backend="closed_form", workers=4)
        cancelled = job.cancel()
        if cancelled and job.state is not JobState.DONE:
            with pytest.raises(JobCancelledError):
                job.result(timeout=60)
            assert job.state is JobState.CANCELLED
        else:  # pragma: no cover - scheduling race: job already finished
            job.result(timeout=60)
