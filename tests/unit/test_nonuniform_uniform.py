"""Unit tests for Non-Uniform-Search (Thm 3.7) and Algorithm 5 (Thm 3.14)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.actions import Action
from repro.core.nonuniform import NonUniformSearch, build_nonuniform_automaton
from repro.core.uniform import (
    UniformSearch,
    first_covering_phase,
    phase_coin_exponent,
    rho,
)
from repro.errors import InvalidParameterError


class TestNonUniformSearch:
    def test_k_choice(self):
        assert NonUniformSearch(1024, 1).k == 10
        assert NonUniformSearch(1024, 4).k == 3  # ceil(10/4)
        assert NonUniformSearch(1000, 1).k == 10  # ceil(log2 1000)

    def test_stop_probability_at_most_one_over_d(self):
        for distance in (8, 100, 1024):
            for ell in (1, 2, 3):
                algorithm = NonUniformSearch(distance, ell)
                assert algorithm.stop_probability <= 1.0 / distance + 1e-12

    def test_chi_matches_theorem(self):
        # Theorem 3.7: chi = log log D + O(1); here b = 3 + ceil(log2 k).
        sc = NonUniformSearch(1024, 1).selection_complexity()
        assert sc.bits == 3 + 4  # k = 10 -> 4 bits
        assert sc.ell == 1.0
        assert sc.chi == pytest.approx(7.0)

    def test_chi_grows_doubly_logarithmically(self):
        chis = [
            NonUniformSearch(d, 1).selection_complexity().chi
            for d in (16, 256, 65536)
        ]
        diffs = [b - a for a, b in zip(chis, chis[1:])]
        # log log D steps by 1 between these D values; chi tracks it
        # within rounding.
        assert all(0 <= diff <= 2 for diff in diffs)

    def test_process_iterations_return_to_origin(self, rng):
        process = NonUniformSearch(8, 1).process(rng)
        actions = [next(process) for _ in range(500)]
        assert Action.ORIGIN in actions

    def test_memory_meter_matches_declared_bits(self):
        algorithm = NonUniformSearch(256, 2)
        assert algorithm.memory_meter().bits == algorithm.selection_complexity().bits

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            NonUniformSearch(1, 1)
        with pytest.raises(InvalidParameterError):
            NonUniformSearch(8, 0)


class TestNonUniformAutomaton:
    def test_state_count(self):
        for distance, ell in [(16, 1), (256, 2), (64, 3)]:
            k = max(1, math.ceil(math.log2(distance) / ell))
            machine = build_nonuniform_automaton(distance, ell)
            assert machine.n_states == 4 * k + 7

    def test_probability_floor_is_exactly_ell(self):
        for ell in (1, 2, 3):
            machine = build_nonuniform_automaton(256, ell)
            assert machine.min_positive_probability() == pytest.approx(2.0**-ell)
            assert machine.selection_complexity().ell == pytest.approx(float(ell))

    def test_rows_are_stochastic(self):
        machine = build_nonuniform_automaton(64, 2)
        np.testing.assert_allclose(
            machine.matrix.sum(axis=1), np.ones(machine.n_states)
        )

    def test_automaton_walk_lengths_match_process(self, rng_factory):
        """The product automaton's move runs follow Geometric(2^-kl)."""
        distance, ell = 16, 1
        machine = build_nonuniform_automaton(distance, ell)
        state = machine.start
        generator = rng_factory(3)
        vertical_runs = []
        run = 0
        seen_vertical = False
        for _ in range(400_000):
            state = machine.step(generator, state)
            label = machine.label(state)
            if label in (Action.UP, Action.DOWN):
                run += 1
                seen_vertical = True
            elif label in (Action.LEFT, Action.RIGHT, Action.ORIGIN) and seen_vertical:
                vertical_runs.append(run)
                run = 0
                seen_vertical = False
            elif label is Action.ORIGIN:
                run = 0
                seen_vertical = False
        assert len(vertical_runs) > 500
        expected_mean = 2 ** (machine_k(distance, ell)) - 1
        assert np.mean(vertical_runs) == pytest.approx(expected_mean, rel=0.1)


def machine_k(distance: int, ell: int) -> int:
    return max(1, math.ceil(math.log2(distance) / ell)) * ell


class TestUniformSearchParameters:
    def test_phase_coin_exponent(self):
        # K + max(i - floor(log2(n)/l), 0)
        assert phase_coin_exponent(3, n_agents=1, ell=1, K=2) == 5
        assert phase_coin_exponent(3, n_agents=8, ell=1, K=2) == 2
        assert phase_coin_exponent(6, n_agents=8, ell=1, K=2) == 5
        assert phase_coin_exponent(4, n_agents=16, ell=2, K=3) == 5

    def test_rho_values(self):
        assert rho(3, 1, 1, 2) == 2.0**5
        # exponent = K + max(i - floor(log2(n)/l), 0) = 2 + (2 - 1) = 3
        assert rho(2, 4, 2, 2) == 2.0 ** (3 * 2)

    def test_first_covering_phase(self):
        assert first_covering_phase(1024, 1) == 10
        assert first_covering_phase(1024, 2) == 5
        assert first_covering_phase(1000, 1) == 10
        assert first_covering_phase(1, 1) == 1

    def test_invalid_phase_rejected(self):
        with pytest.raises(InvalidParameterError):
            phase_coin_exponent(0, 1, 1)


class TestUniformSearchBehaviour:
    def test_process_emits_sorties_and_returns(self, rng):
        process = UniformSearch(n_agents=2, ell=1).process(rng)
        actions = [next(process) for _ in range(2000)]
        assert Action.ORIGIN in actions
        assert any(a.is_move for a in actions)

    def test_truncated_machine_idles_after_max_phase(self, rng):
        process = UniformSearch(n_agents=1, ell=1, max_phase=1).process(rng)
        actions = [next(process) for _ in range(5000)]
        tail = actions[-100:]
        assert all(a is Action.NONE for a in tail)

    def test_chi_accounting_tracks_3_log_log_d(self):
        algorithm = UniformSearch(n_agents=4, ell=1)
        chi_small = algorithm.selection_complexity_for_distance(2**8).chi
        chi_large = algorithm.selection_complexity_for_distance(2**16).chi
        assert chi_large > chi_small
        # Three counters each gain one bit when log D doubles.
        assert chi_large - chi_small <= 3 + 1

    def test_chi_decreases_with_larger_ell(self):
        d = 2**12
        chi_ell_1 = UniformSearch(4, ell=1).selection_complexity_for_distance(d).chi
        chi_ell_4 = UniformSearch(4, ell=4).selection_complexity_for_distance(d).chi
        # b shrinks by ~3 log l, chi pays back only log l.
        assert chi_ell_4 < chi_ell_1

    def test_selection_complexity_none_when_untruncated(self):
        assert UniformSearch(2).selection_complexity() is None
        assert UniformSearch(2, max_phase=6).selection_complexity() is not None

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            UniformSearch(0)
        with pytest.raises(InvalidParameterError):
            UniformSearch(1, ell=0)
        with pytest.raises(InvalidParameterError):
            UniformSearch(1, K=0)
        with pytest.raises(InvalidParameterError):
            UniformSearch(1, max_phase=0)
