"""Additional unit tests: trace filtering and engine edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Action
from repro.sim.trace import Execution, TraceRecorder


class TestTraceFilters:
    def test_agent_filter(self):
        recorder = TraceRecorder(agent_ids=[1])
        recorder.record(0, Action.UP, (0, 1))
        recorder.record(1, Action.DOWN, (0, -1))
        assert recorder.execution(0).n_steps == 0
        assert recorder.execution(1).n_steps == 1
        assert not recorder.wants(0)
        assert recorder.wants(1)

    def test_step_cap(self):
        recorder = TraceRecorder(max_steps_per_agent=2)
        for _ in range(5):
            recorder.record(0, Action.UP, (0, 1))
        assert recorder.execution(0).n_steps == 2

    def test_executions_sorted_by_agent(self):
        recorder = TraceRecorder()
        recorder.record(2, Action.UP, (0, 1))
        recorder.record(0, Action.DOWN, (0, -1))
        ids = [execution.agent_id for execution in recorder.executions]
        assert ids == [0, 2]

    def test_unrecorded_agent_yields_empty_execution(self):
        recorder = TraceRecorder()
        execution = recorder.execution(7)
        assert execution.agent_id == 7
        assert execution.n_steps == 0


class TestExecution:
    def test_counts_and_views(self):
        execution = Execution(agent_id=0)
        execution.append(Action.UP, (0, 1))
        execution.append(Action.NONE, (0, 1))
        execution.append(Action.RIGHT, (1, 1))
        execution.append(Action.ORIGIN, (0, 0))
        assert execution.n_steps == 4
        assert execution.n_moves == 2
        assert execution.moves_only() == [Action.UP, Action.RIGHT]
        assert execution.visited()[0] == (0, 0)
        assert execution.visited()[-1] == (0, 0)


class TestEngineEdgeCases:
    def test_origin_action_while_at_origin_is_noop(self):
        from repro.core.base import SearchAlgorithm
        from repro.grid.world import GridWorld
        from repro.sim.engine import EngineConfig, SearchEngine

        class OriginSpammer(SearchAlgorithm):
            def process(self, rng: np.random.Generator):
                for _ in range(5):
                    yield Action.ORIGIN
                yield Action.UP
                while True:
                    yield Action.NONE

        engine = SearchEngine(
            EngineConfig(move_budget=10, count_return_moves=True)
        )
        world = GridWorld(target=(0, 1), distance_bound=1)
        outcome = engine.run(OriginSpammer(), 1, world, rng=1)
        assert outcome.found
        assert outcome.m_moves == 1  # idle returns cost nothing

    def test_counted_returns_reported_in_totals(self):
        from repro.core.base import SearchAlgorithm
        from repro.grid.world import GridWorld
        from repro.sim.engine import EngineConfig, SearchEngine

        class OutAndBack(SearchAlgorithm):
            def process(self, rng: np.random.Generator):
                yield Action.UP
                yield Action.UP
                yield Action.ORIGIN
                while True:
                    yield Action.NONE

        engine = SearchEngine(
            EngineConfig(move_budget=100, step_budget=50, count_return_moves=True)
        )
        world = GridWorld(target=(9, 9), distance_bound=9)
        outcome = engine.run(OutAndBack(), 1, world, rng=1)
        agent = outcome.per_agent[0]
        assert agent.total_moves == 4  # 2 out + 2 charged return moves
