"""Unit tests for repro.sim.stats, repro.sim.runner, repro.sim.rng."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim.rng import derive_seed, generator_from, spawn_generators, trial_generators
from repro.sim.runner import ExperimentRow, Sweep, grid_product, rows_to_markdown
from repro.sim.stats import (
    Estimate,
    bootstrap_mean_ci,
    fit_loglog_slope,
    fit_ratio,
    geometric_mean,
    mean_ci,
    normal_quantile,
    summarize,
)


class TestNormalQuantile:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.025, -1.959964),
            (0.84134, 1.0),
            (0.999, 3.090232),
            (0.001, -3.090232),
        ],
    )
    def test_known_values(self, p, expected):
        assert normal_quantile(p) == pytest.approx(expected, abs=2e-4)

    def test_symmetry(self):
        for p in (0.6, 0.9, 0.99):
            assert normal_quantile(p) == pytest.approx(-normal_quantile(1 - p), abs=1e-9)

    def test_rejects_boundary(self):
        with pytest.raises(InvalidParameterError):
            normal_quantile(0.0)
        with pytest.raises(InvalidParameterError):
            normal_quantile(1.0)


class TestEstimates:
    def test_mean_ci_basic(self):
        estimate = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert estimate.mean == 2.5
        assert estimate.ci_low < 2.5 < estimate.ci_high
        assert estimate.n_samples == 4
        assert estimate.contains(2.5)

    def test_single_sample_degenerate(self):
        estimate = mean_ci([7.0])
        assert estimate.mean == estimate.ci_low == estimate.ci_high == 7.0

    def test_ci_narrows_with_samples(self, rng):
        small = mean_ci(rng.normal(0, 1, 50))
        large = mean_ci(rng.normal(0, 1, 5000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_ci_coverage_on_synthetic_data(self, rng):
        covered = 0
        trials = 400
        for _ in range(trials):
            samples = rng.normal(10.0, 2.0, 40)
            if mean_ci(samples).contains(10.0):
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.04)

    def test_bootstrap_ci(self, rng):
        samples = rng.exponential(5.0, 300)
        estimate = bootstrap_mean_ci(samples, rng)
        assert estimate.ci_low < np.mean(samples) < estimate.ci_high

    def test_bootstrap_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            bootstrap_mean_ci([], rng)
        with pytest.raises(InvalidParameterError):
            bootstrap_mean_ci([1.0, 2.0], rng, n_resamples=2)

    def test_summarize_is_mean_ci(self):
        assert summarize([1.0, 3.0]).mean == mean_ci([1.0, 3.0]).mean

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_ci([])

    def test_str_rendering(self):
        text = str(mean_ci([1.0, 2.0, 3.0]))
        assert "n=3" in text


class TestKolmogorovSmirnov:
    def test_identical_samples_zero_distance(self):
        from repro.sim.stats import ks_statistic

        data = [1.0, 2.0, 3.0, 4.0]
        assert ks_statistic(data, data) == 0.0

    def test_disjoint_samples_distance_one(self):
        from repro.sim.stats import ks_statistic

        assert ks_statistic([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_symmetry(self, rng):
        from repro.sim.stats import ks_statistic

        a = rng.normal(0, 1, 200)
        b = rng.normal(0.5, 1, 300)
        assert ks_statistic(a, b) == pytest.approx(ks_statistic(b, a))

    def test_same_distribution_passes_threshold(self, rng):
        from repro.sim.stats import ks_statistic, ks_two_sample_threshold

        a = rng.exponential(2.0, 2000)
        b = rng.exponential(2.0, 2000)
        assert ks_statistic(a, b) <= ks_two_sample_threshold(2000, 2000)

    def test_different_distribution_fails_threshold(self, rng):
        from repro.sim.stats import ks_statistic, ks_two_sample_threshold

        a = rng.exponential(2.0, 2000)
        b = rng.exponential(3.0, 2000)
        assert ks_statistic(a, b) > ks_two_sample_threshold(2000, 2000)

    def test_validation(self):
        from repro.sim.stats import ks_statistic, ks_two_sample_threshold

        with pytest.raises(InvalidParameterError):
            ks_statistic([], [1.0])
        with pytest.raises(InvalidParameterError):
            ks_two_sample_threshold(0, 5)
        with pytest.raises(InvalidParameterError):
            ks_two_sample_threshold(5, 5, alpha=1.5)


class TestFits:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(InvalidParameterError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(InvalidParameterError):
            geometric_mean([])

    def test_loglog_slope_recovers_exponent(self):
        xs = [2.0, 4.0, 8.0, 16.0, 32.0]
        ys = [3.0 * x**2 for x in xs]
        slope, intercept, r2 = fit_loglog_slope(xs, ys)
        assert slope == pytest.approx(2.0, abs=1e-9)
        assert math.exp(intercept) == pytest.approx(3.0, rel=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_loglog_slope_with_noise(self, rng):
        xs = np.array([2.0**i for i in range(4, 12)])
        ys = 5.0 * xs**1.5 * rng.lognormal(0.0, 0.05, xs.size)
        slope, _, r2 = fit_loglog_slope(xs, ys)
        assert slope == pytest.approx(1.5, abs=0.1)
        assert r2 > 0.97

    def test_loglog_validation(self):
        with pytest.raises(InvalidParameterError):
            fit_loglog_slope([1.0], [2.0])
        with pytest.raises(InvalidParameterError):
            fit_loglog_slope([1.0, -2.0], [1.0, 2.0])

    def test_fit_ratio(self):
        mean_ratio, max_ratio = fit_ratio([2.0, 4.0], [1.0, 1.0])
        assert mean_ratio == pytest.approx(3.0)
        assert max_ratio == pytest.approx(4.0)
        with pytest.raises(InvalidParameterError):
            fit_ratio([1.0], [0.0])
        with pytest.raises(InvalidParameterError):
            fit_ratio([1.0], [1.0, 2.0])


class TestRng:
    def test_generator_from_accepts_int_seed(self):
        generator = generator_from(42)
        assert isinstance(generator, np.random.Generator)

    def test_generator_from_passes_through(self, rng):
        assert generator_from(rng) is rng

    def test_generator_from_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            generator_from(-1)

    def test_spawned_streams_differ(self):
        a, b = spawn_generators(7, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        first = [g.random() for g in spawn_generators(7, 3)]
        second = [g.random() for g in spawn_generators(7, 3)]
        assert first == second

    def test_derive_seed_is_stable_and_distinct(self):
        a1 = np.random.default_rng(derive_seed(1, 2, 3)).random()
        a2 = np.random.default_rng(derive_seed(1, 2, 3)).random()
        b = np.random.default_rng(derive_seed(1, 2, 4)).random()
        assert a1 == a2
        assert a1 != b

    def test_trial_generators_count(self):
        assert len(trial_generators(1, [0, 0], 5)) == 5

    def test_negative_keys_rejected(self):
        with pytest.raises(InvalidParameterError):
            derive_seed(1, -2)


class TestSweep:
    def test_grid_product(self):
        grid = grid_product(a=[1, 2], b=["x"])
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_grid_product_empty_axis_rejected(self):
        with pytest.raises(InvalidParameterError):
            grid_product(a=[])
        with pytest.raises(InvalidParameterError):
            grid_product()

    def test_sweep_runs_and_aggregates(self):
        def trial(params, rng):
            return params["base"] + rng.random() * 0.01

        rows = Sweep(trial, grid_product(base=[1.0, 5.0]), trials=20, seed=3).run()
        assert len(rows) == 2
        assert rows[0].estimate.mean == pytest.approx(1.0, abs=0.02)
        assert rows[1].estimate.mean == pytest.approx(5.0, abs=0.02)

    def test_sweep_is_reproducible(self):
        def trial(params, rng):
            return rng.random()

        first = Sweep(trial, [{"p": 1}], trials=5, seed=9).run()
        second = Sweep(trial, [{"p": 1}], trials=5, seed=9).run()
        assert first[0].estimate.mean == second[0].estimate.mean

    def test_sweep_validation(self):
        with pytest.raises(InvalidParameterError):
            Sweep(lambda p, r: 0.0, [], trials=1, seed=1)
        with pytest.raises(InvalidParameterError):
            Sweep(lambda p, r: 0.0, [{}], trials=0, seed=1)

    def test_rows_to_markdown(self):
        rows = [
            ExperimentRow(
                params={"D": 8}, estimate=mean_ci([1.0, 2.0]), extras={"bound": 4.0}
            )
        ]
        table = rows_to_markdown(rows, ["D"], "moves", ["bound"])
        lines = table.splitlines()
        assert lines[0].startswith("| D | moves | ci95 | bound |")
        assert "| 8 |" in lines[2]
        assert "4" in lines[2]
