"""Unit tests for the experiment compiler IR and its satellites.

Covers the invariants :mod:`repro.experiments.compiler` promises:

* **Merge coverage** — every declared (experiment, sweep, point)
  subscribes to exactly one merged point, within and across
  experiments;
* **Max-trials wins** — a merged point carries the largest trial count
  over its subscribers, and only trial-addressed backends merge across
  trial counts (stream-anchored backends merge at exact repeats only);
* **Cache dedup** — points already satisfied by the content-addressed
  cache are never re-executed, proven with
  :func:`repro.sim.jobs.backend_run_count`;
* **Prefix scatter** — a subscriber with fewer trials than its merged
  point reads rows bit-identical to a standalone uncompiled run;
* **Selector feedback** — :func:`repro.sim.selector.observe_timing`
  EWMA-blends measured job timings into the persisted profile without
  resetting its staleness clock;
* **CLI surface** — ``repro-ants experiment --all`` exit semantics and
  the single-sourced default seed.
"""

from __future__ import annotations

import time

import pytest

import repro.sim.cache as cache_module
from repro.errors import InvalidParameterError
from repro.experiments import REGISTRY, SPEC_REGISTRY
from repro.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.experiments.compiler import (
    ExperimentSpec,
    SpecContext,
    SweepSpec,
    compile_program,
    execute_program,
    execute_spec,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest, resolve_backend
from repro.sim.cache import configure_cache, get_cache
from repro.sim.jobs import backend_run_count
from repro.sim.runner import SimulationTrial
from repro.sim.selector import (
    BASE_BUDGET,
    CalibrationProfile,
    CostEntry,
    load_profile,
    observe_timing,
    save_profile,
)

SEED = 20140507


@pytest.fixture
def fresh_cache(tmp_path):
    """A private cache (and thus selector profile) for one test."""
    cache = configure_cache(directory=tmp_path)
    yield cache
    configure_cache(
        directory=cache_module.default_cache_dir(), max_memory_entries=256
    )


def _factory(params):
    distance = int(params["D"])
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(distance),
        n_agents=2,
        target=(distance, distance),
        move_budget=40_000,
    )


def _spec(
    experiment_id,
    trials,
    backend="closed_form",
    seed_keys=(1,),
    grid=({"D": 8},),
    sweep_name="s",
):
    """A synthetic one-sweep spec for exercising the IR."""

    def analyze(context: SpecContext) -> ExperimentResult:
        rows = context.rows(sweep_name)
        return ExperimentResult(
            experiment_id=experiment_id,
            title="synthetic",
            paper_claim="n/a",
            table=repr([row.estimate for row in rows]),
            checks={"ran": len(rows) == len(grid)},
        )

    return ExperimentSpec(
        experiment_id=experiment_id,
        sweeps=(
            SweepSpec(
                name=sweep_name,
                trial=SimulationTrial(_factory, backend=backend),
                grid=tuple(grid),
                trials=trials,
                seed_keys=tuple(seed_keys),
            ),
        ),
        analyze=analyze,
    )


def _subscriber_slots(program):
    return [
        (sub.experiment_id, sub.sweep_name, sub.point_index)
        for point in program.points
        for sub in point.subscribers
    ]


class TestBackendTrialAddressing:
    def test_flags_match_the_merge_legality_story(self):
        request = _factory({"D": 8})
        assert resolve_backend(request, "closed_form").trial_addressed
        assert resolve_backend(request, "reference").trial_addressed
        assert not resolve_backend(request, "batched").trial_addressed


class TestCanonicalMerge:
    def test_cross_experiment_merge_max_trials_wins(self, fresh_cache):
        program = compile_program(
            [_spec("T01", trials=4), _spec("T02", trials=9)], "smoke", SEED
        )
        assert program.stats.declared_points == 2
        assert program.stats.merged_points == 1
        point = program.points[0]
        assert point.request.n_trials == 9
        assert point.trial_addressed
        assert {s.experiment_id for s in point.subscribers} == {"T01", "T02"}

    def test_every_declared_point_subscribes_exactly_once(self, fresh_cache):
        grid = ({"D": 8}, {"D": 16})
        specs = [
            _spec("T01", trials=4, grid=grid),
            _spec("T02", trials=6, grid=grid),
            _spec("T03", trials=4, grid=grid, seed_keys=(2,)),
        ]
        program = compile_program(specs, "smoke", SEED)
        slots = _subscriber_slots(program)
        assert sorted(slots) == sorted(
            (spec.experiment_id, "s", index)
            for spec in specs
            for index in range(len(grid))
        )
        assert len(slots) == len(set(slots)) == program.stats.declared_points

    def test_distinct_seed_addresses_never_merge(self, fresh_cache):
        # Same factory and grid, different seed keys: the bound requests
        # draw different streams, so merging them would corrupt tables.
        program = compile_program(
            [_spec("T01", trials=4), _spec("T02", trials=4, seed_keys=(2,))],
            "smoke",
            SEED,
        )
        assert program.stats.merged_points == 2

    def test_stream_anchored_backends_merge_only_exact_repeats(
        self, fresh_cache
    ):
        equal = compile_program(
            [
                _spec("T01", trials=4, backend="batched"),
                _spec("T02", trials=4, backend="batched"),
            ],
            "smoke",
            SEED,
        )
        assert equal.stats.merged_points == 1
        unequal = compile_program(
            [
                _spec("T01", trials=4, backend="batched"),
                _spec("T02", trials=9, backend="batched"),
            ],
            "smoke",
            SEED,
        )
        assert unequal.stats.merged_points == 2
        for point in unequal.points:
            assert not point.trial_addressed

    def test_uncached_sweeps_are_left_to_finalization(self, fresh_cache):
        spec = _spec("T01", trials=4)
        opted_out = ExperimentSpec(
            experiment_id="T01",
            sweeps=(
                SweepSpec(
                    name="s",
                    trial=SimulationTrial(_factory, cache=False),
                    grid=spec.sweeps[0].grid,
                    trials=4,
                    seed_keys=(1,),
                ),
            ),
            analyze=spec.analyze,
        )
        program = compile_program([opted_out], "smoke", SEED)
        assert program.stats.declared_points == 0
        assert program.points == []


class TestCacheDedup:
    def test_cache_satisfied_points_are_never_rerun(self, fresh_cache):
        specs = [_spec("T01", trials=4)]
        first = compile_program(specs, "smoke", SEED)
        assert first.stats.cache_satisfied == 0
        before = backend_run_count()
        report = execute_program(first)
        assert backend_run_count() > before
        assert report.points_executed == 1

        second = compile_program(specs, "smoke", SEED)
        assert second.stats.cache_satisfied == second.stats.merged_points == 1
        assert second.stats.to_run == 0
        before = backend_run_count()
        replay = execute_program(second)
        assert backend_run_count() == before
        assert replay.points_executed == 0
        assert replay.results["T01"].checks == {"ran": True}

    def test_one_merged_simulation_serves_every_subscriber(self, fresh_cache):
        specs = [_spec("T01", trials=4), _spec("T02", trials=9)]
        program = compile_program(specs, "smoke", SEED)
        report = execute_program(program)
        assert report.points_executed == 1
        assert report.scattered_entries == 1  # T01's 4-trial prefix entry
        # Both experiments' uncompiled executors now replay purely from
        # cache: zero further backend executions.
        before = backend_run_count()
        for spec in specs:
            result = execute_spec(spec, "smoke", SEED)
            assert result.all_passed
        assert backend_run_count() == before


class TestPrefixScatterBitIdentity:
    def test_prefix_subscriber_matches_standalone_run(self, tmp_path):
        short = _spec("T01", trials=4)
        # Warm one cache through the compiler with a 9-trial superset.
        configure_cache(directory=tmp_path / "compiled")
        execute_program(
            compile_program([short, _spec("T02", trials=9)], "smoke", SEED)
        )
        before = backend_run_count()
        compiled = execute_spec(short, "smoke", SEED)
        assert backend_run_count() == before  # pure cache replay
        # Same spec, standalone, in a cache that never saw the merge.
        configure_cache(directory=tmp_path / "standalone")
        standalone = execute_spec(short, "smoke", SEED)
        assert compiled == standalone
        configure_cache(
            directory=cache_module.default_cache_dir(), max_memory_entries=256
        )


class TestObserveTiming:
    def _entry_profile(self, per_trial=1.0, created_at=None):
        key = CalibrationProfile.entry_key("closed_form", "algorithm1")
        return CalibrationProfile(
            entries={
                key: CostEntry(
                    intercept=0.0, per_trial=per_trial, budget_exponent=0.0
                )
            },
            shard_overhead_seconds=0.01,
            created_at=time.time() if created_at is None else created_at,
        )

    def test_noop_without_a_profile(self, fresh_cache):
        assert not observe_timing("closed_form", "algorithm1", 10, 4000, 1.0)

    def test_noop_below_the_floors(self, fresh_cache):
        save_profile(self._entry_profile())
        assert not observe_timing("closed_form", "algorithm1", 2, 4000, 1.0)
        assert not observe_timing("closed_form", "algorithm1", 10, 4000, 0.001)
        assert load_profile().entry(
            "closed_form", "algorithm1"
        ).per_trial == pytest.approx(1.0)

    def test_noop_for_an_unfitted_pair(self, fresh_cache):
        save_profile(self._entry_profile())
        assert not observe_timing("batched", "algorithm1", 10, 4000, 1.0)

    def test_ewma_blend_and_preserved_staleness_clock(self, fresh_cache):
        created = time.time() - 60.0
        save_profile(self._entry_profile(per_trial=1.0, created_at=created))
        # 10 trials at BASE_BUDGET in 20s: observed per-trial cost 2.0;
        # blended = 0.8 * 1.0 + 0.2 * 2.0 = 1.2.
        assert observe_timing(
            "closed_form", "algorithm1", 10, BASE_BUDGET, 20.0
        )
        profile = load_profile()
        entry = profile.entry("closed_form", "algorithm1")
        assert entry.per_trial == pytest.approx(1.2)
        assert profile.created_at == pytest.approx(created)

    def test_invalid_alpha_rejected(self, fresh_cache):
        save_profile(self._entry_profile())
        with pytest.raises(InvalidParameterError):
            observe_timing(
                "closed_form", "algorithm1", 10, 4000, 1.0, alpha=1.5
            )


class TestSpecContract:
    def test_unknown_sweep_rows_raise(self):
        context = SpecContext(scale="smoke", seed=SEED)
        with pytest.raises(InvalidParameterError):
            context.rows("nope")

    def test_unknown_sweep_lookup_raises(self):
        spec = _spec("T01", trials=4)
        with pytest.raises(InvalidParameterError):
            spec.sweep("nope")

    def test_invalid_scale_rejected_everywhere(self):
        spec = _spec("T01", trials=4)
        with pytest.raises(InvalidParameterError):
            execute_spec(spec, "huge", SEED)
        with pytest.raises(InvalidParameterError):
            compile_program([spec], "huge", SEED)

    def test_every_experiment_exports_a_matching_spec(self):
        assert set(SPEC_REGISTRY) == set(REGISTRY)
        for key, factory in SPEC_REGISTRY.items():
            spec = factory("smoke")
            assert spec.experiment_id == key
            assert callable(spec.analyze)
            for sweep in spec.sweeps:
                assert sweep.trials >= 1
                assert len(sweep.grid) >= 1


class TestCliSurface:
    def test_seed_default_is_single_sourced(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["experiment", "E01"]).seed == DEFAULT_SEED
        assert parser.parse_args(["report"]).seed == DEFAULT_SEED

    def test_experiment_requires_id_or_all(self, capsys):
        from repro.cli import main

        assert main(["experiment"]) == 2

    def _fake_registry(self, passed):
        def fake_run(scale="smoke", seed=DEFAULT_SEED):
            return ExperimentResult(
                experiment_id="T01",
                title="synthetic",
                paper_claim="n/a",
                table="",
                checks={"check": passed},
            )

        return {"T01": fake_run}

    def test_experiment_all_exit_codes(self, monkeypatch, capsys):
        import repro.experiments as experiments
        from repro.cli import main

        monkeypatch.setattr(
            experiments, "REGISTRY", self._fake_registry(True)
        )
        assert main(["experiment", "--all"]) == 0
        assert "[T01] synthetic — ok" in capsys.readouterr().out

        monkeypatch.setattr(
            experiments, "REGISTRY", self._fake_registry(False)
        )
        assert main(["experiment", "--all"]) == 1
        out = capsys.readouterr().out
        assert "CHECK FAILURES" in out
        assert "FAIL: check" in out
