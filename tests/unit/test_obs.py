"""The observability layer: spans, propagation, ring, metrics.

Pins the ISSUE's observability guarantees:

* **parentage** — nested ``span()`` blocks parent automatically; a
  pooled shard task in another *process* parents under the submitting
  job span via the pickled :class:`SpanContext`;
* **boundedness** — a 10k-span flood leaves the ring at its maximum
  length (no unbounded memory on long-lived servers);
* **propagation** — ``traceparent`` round-trips through the W3C
  header format, and malformed headers degrade to ``None`` rather
  than failing the request;
* **exposition** — the Prometheus text rendering is format 0.0.4:
  HELP/TYPE lines, escaped label values, cumulative histogram buckets
  closed by ``+Inf`` with ``_sum``/``_count``;
* **cache ratios** — :class:`CacheInfo` derives entry- and
  shard-level hit ratios for ``cache info`` and ``/v1/stats``.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    LATENCY_BOUNDARIES,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    child_span,
    clear_ring,
    configure_tracing,
    current_context,
    find_trace_for_job,
    parse_traceparent,
    render_trace,
    ring_spans,
    span,
    spans_for_trace,
    traceparent_header,
)


@pytest.fixture(autouse=True)
def _fresh_ring():
    """Each test starts from an empty ring at the default bound."""
    configure_tracing(enabled=True, ring_size=4096, sink=True)
    clear_ring()
    yield
    configure_tracing(enabled=True, ring_size=4096, sink=True)
    clear_ring()


class TestSpans:
    def test_nested_spans_parent_automatically(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        recorded = {sp.name: sp for sp in ring_spans()}
        assert recorded["inner"].end_time is not None
        assert recorded["inner"].end_time >= recorded["inner"].start_time
        assert recorded["outer"].parent_id is None

    def test_exception_marks_status_error_and_reraises(self):
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        (recorded,) = ring_spans()
        assert recorded.status == "error"

    def test_child_span_is_noop_without_ambient_parent(self):
        assert current_context() is None
        with child_span("orphan") as sp:
            assert sp is None
        assert ring_spans() == []

    def test_disabled_tracing_yields_none_and_records_nothing(self):
        configure_tracing(enabled=False)
        with span("invisible") as sp:
            assert sp is None
        assert ring_spans() == []

    def test_explicit_context_overrides_ambient(self):
        remote = SpanContext(trace_id="a" * 32, span_id="b" * 16)
        with span("local"):
            with span("stitched", context=remote) as sp:
                assert sp.trace_id == remote.trace_id
                assert sp.parent_id == remote.span_id

    def test_span_payload_round_trip(self):
        with span("payload", backend="batched") as sp:
            sp.set_attribute("n_trials", 4)
        rebuilt = Span.from_payload(sp.to_payload())
        assert rebuilt.name == "payload"
        assert rebuilt.attributes == {"backend": "batched", "n_trials": 4}
        assert rebuilt.context == sp.context

    def test_ring_stays_bounded_under_flood(self):
        configure_tracing(ring_size=256, sink=False)
        for i in range(10_000):
            with span(f"flood-{i}"):
                pass
        spans = ring_spans()
        assert len(spans) == 256
        # Oldest evicted first: only the newest 256 survive.
        assert spans[-1].name == "flood-9999"
        assert spans[0].name == "flood-9744"


class TestPropagation:
    def test_traceparent_round_trip(self):
        with span("root") as sp:
            header = traceparent_header()
            parsed = parse_traceparent(header)
            assert parsed == sp.context

    @pytest.mark.parametrize("value", [
        None, "", "garbage", "00-zz-ff-01",
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",
        "01-" + "a" * 32 + "-" + "b" * 16,
    ])
    def test_malformed_traceparent_parses_to_none(self, value):
        assert parse_traceparent(value) is None

    def test_pooled_shard_spans_parent_under_the_job_span(self):
        """Span context crosses the ProcessPool boundary.

        A 2-worker, multi-trial run shards through
        ``ProcessPoolExecutor``; the workers cannot see this process's
        contextvars, so their shard spans parent correctly only if the
        pickled ``SpanContext`` travels in the task payload and the
        JSONL sink carries the spans back."""
        from repro.sim import AlgorithmSpec, SimulationRequest, simulate

        request = SimulationRequest(
            algorithm=AlgorithmSpec.algorithm1(8),
            n_agents=4,
            target=(8, 8),
            move_budget=300_000,
            n_trials=4,
            seed=20260808,
        )
        simulate(request, backend="reference", workers=2, cache=False)
        # The driver thread records the job span moments after
        # ``result()`` unblocks; poll briefly rather than racing it.
        import time

        job_span = None
        for _ in range(50):
            job_span = next(
                (sp for sp in ring_spans() if sp.name == "job"), None
            )
            if job_span is not None:
                break
            time.sleep(0.02)
        assert job_span is not None, "job span never recorded"
        spans = spans_for_trace(job_span.trace_id)
        shards = [sp for sp in spans if sp.name == "shard"]
        assert len(shards) >= 2
        assert {sp.parent_id for sp in shards} == {job_span.span_id}
        assert {sp.trace_id for sp in shards} == {job_span.trace_id}
        assert find_trace_for_job(
            job_span.attributes["job_id"]
        ) == job_span.trace_id


class TestRenderTrace:
    def test_tree_shows_durations_and_promotes_orphans(self):
        spans = [
            Span(name="root", trace_id="t", span_id="r",
                 start_time=0.0, end_time=0.010),
            Span(name="kid", trace_id="t", span_id="k", parent_id="r",
                 start_time=0.001, end_time=0.005),
            Span(name="stray", trace_id="t", span_id="s",
                 parent_id="not-recorded",
                 start_time=0.0, end_time=0.001),
        ]
        text = render_trace(spans)
        assert "root  10.0ms (self 6.0ms)" in text
        assert "└─ kid  4.0ms" in text
        assert "stray" in text  # promoted to a root, not dropped

    def test_empty_trace(self):
        assert render_trace([]) == "(no spans)"


class TestMetrics:
    def test_counter_rejects_negative_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ["kind"])
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.total() == 4
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ["kind"])
        with pytest.raises(ValueError):
            counter.inc(other="x")

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ["kind"])
        again = registry.counter("c_total", "ignored", ["kind"])
        assert again is first

    def test_redeclare_with_different_type_or_labels_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ["kind"])
        with pytest.raises(ValueError):
            registry.gauge("c_total", "help", ["kind"])
        with pytest.raises(ValueError):
            registry.counter("c_total", "help", ["other"])

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h_seconds", "help", boundaries=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 2.0, 5.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(7.55)
        text = registry.render_prometheus()
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 4' in text
        assert "h_seconds_count 4" in text

    def test_prometheus_rendering_escapes_and_annotates(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "c_total", 'multi\nline "help"', ["path"]
        )
        counter.inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert '# HELP c_total multi\\nline "help"' in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_payload_mirrors_rendering(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ["kind"]).inc(kind="x")
        payload = registry.to_payload()
        assert payload["c_total"]["type"] == "counter"
        assert payload["c_total"]["values"] == [
            {"labels": {"kind": "x"}, "value": 1.0}
        ]

    def test_default_latency_boundaries_are_increasing(self):
        assert list(LATENCY_BOUNDARIES) == sorted(LATENCY_BOUNDARIES)
        assert len(set(LATENCY_BOUNDARIES)) == len(LATENCY_BOUNDARIES)

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestCacheHitRatio:
    def test_ratios_derive_from_counters(self):
        from repro.sim.cache import CacheInfo

        info = CacheInfo(
            directory=None, disk_enabled=False, disk_error=None,
            memory_entries=0, max_memory_entries=8, disk_files=0,
            disk_bytes=0, hits_memory=3, hits_disk=1, misses=4,
            stores=4, code_version="sim-v4", hits_shard=2, misses_shard=6, stores_shard=6,
        )
        assert info.hit_ratio == pytest.approx(0.5)
        assert info.hit_ratio_shard == pytest.approx(0.25)
        payload = info.to_payload()
        assert payload["hit_ratio"] == pytest.approx(0.5)
        assert payload["hit_ratio_shard"] == pytest.approx(0.25)
        assert any(
            "hit ratio" in line for line in info.summary_lines()
        )

    def test_ratio_is_none_before_any_lookup(self):
        from repro.sim.cache import CacheInfo

        info = CacheInfo(
            directory=None, disk_enabled=False, disk_error=None,
            memory_entries=0, max_memory_entries=8, disk_files=0,
            disk_bytes=0, hits_memory=0, hits_disk=0, misses=0,
            stores=0, code_version="sim-v4", hits_shard=0, misses_shard=0, stores_shard=0,
        )
        assert info.hit_ratio is None
        assert info.hit_ratio_shard is None
