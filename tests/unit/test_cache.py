"""Unit tests for the content-addressed simulation result cache.

Correctness contract: a hit must be indistinguishable from a fresh
simulation (bit for bit), and a key must change whenever the request,
the backend, or the simulator code version changes — those are the
only three inputs a result depends on.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

import os
import time

import repro.sim.cache as cache_module
from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.cache import (
    SimulationCache,
    cache_key,
    configure_cache,
    get_cache,
    request_fingerprint,
    shard_cache_key,
)
from repro.sim.service import backend_run_count


def _request(**overrides):
    defaults = dict(
        algorithm=AlgorithmSpec.algorithm1(8),
        n_agents=2,
        target=(5, 3),
        move_budget=100_000,
        n_trials=6,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationRequest(**defaults)


@pytest.fixture
def fresh_cache(tmp_path):
    """A private cache instance installed as the process default."""
    cache = configure_cache(directory=tmp_path, max_memory_entries=8)
    cache.clear()
    yield cache
    # Restore the session-isolated default (see tests/conftest.py).
    configure_cache(
        directory=cache_module.default_cache_dir(), max_memory_entries=256
    )


class TestFingerprint:
    def test_stable_across_equal_requests(self):
        assert request_fingerprint(_request()) == request_fingerprint(_request())

    def test_every_field_mutation_changes_the_fingerprint(self):
        base = request_fingerprint(_request())
        mutations = [
            _request(algorithm=AlgorithmSpec.algorithm1(9)),
            _request(algorithm=AlgorithmSpec.nonuniform(8, 1)),
            _request(n_agents=3),
            _request(target=(5, 4)),
            _request(move_budget=100_001),
            _request(n_trials=7),
            _request(seed=8),
            _request(seed_keys=(1,)),
            _request(distance_bound=64),
            _request(step_budget=1000),
        ]
        fingerprints = {request_fingerprint(m) for m in mutations}
        assert base not in fingerprints
        assert len(fingerprints) == len(mutations)

    def test_backend_and_code_version_enter_the_key(self, monkeypatch):
        request = _request()
        assert cache_key(request, "batched") != cache_key(request, "closed_form")
        before = cache_key(request, "batched")
        monkeypatch.setattr(cache_module, "CODE_VERSION", "sim-vNEXT")
        assert cache_key(request, "batched") != before


class TestMemoryLayer:
    def test_hit_returns_stored_outcomes(self, fresh_cache):
        request = _request()
        result = simulate(request, backend="batched", cache=False)
        fresh_cache.store(request, "batched", result.outcomes)
        assert fresh_cache.lookup(request, "batched") == result.outcomes

    def test_miss_on_request_mutation_and_backend_change(self, fresh_cache):
        request = _request()
        result = simulate(request, backend="batched", cache=False)
        fresh_cache.store(request, "batched", result.outcomes)
        assert fresh_cache.lookup(_request(seed=8), "batched") is None
        assert fresh_cache.lookup(request, "closed_form") is None

    def test_lru_eviction_bounds_memory(self, fresh_cache):
        outcomes = simulate(_request(), backend="batched", cache=False).outcomes
        for seed in range(20):
            fresh_cache.store(_request(seed=seed), "batched", outcomes)
        info = fresh_cache.info()
        assert info.memory_entries <= info.max_memory_entries == 8
        # The most recent stores survive; disk still holds everything.
        assert fresh_cache.lookup(_request(seed=19), "batched") is not None
        assert info.stores == 20

    def test_code_version_bump_invalidates(self, fresh_cache, monkeypatch):
        request = _request()
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        fresh_cache.store(request, "batched", outcomes)
        monkeypatch.setattr(cache_module, "CODE_VERSION", "sim-vNEXT")
        assert fresh_cache.lookup(request, "batched") is None

    def test_sim_v3_entries_not_served_under_sim_v4(
        self, fresh_cache, monkeypatch
    ):
        """Entries written before the blocked-kernel rewrite stay dead.

        The blocked kernels (CODE_VERSION sim-v4) consume the RNG
        stream in a different order than sim-v3, so a sim-v3 payload
        is distributionally fine but bit-different; serving one would
        silently break request-level determinism.
        """
        assert cache_module.CODE_VERSION == "sim-v4"
        request = _request()
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        monkeypatch.setattr(cache_module, "CODE_VERSION", "sim-v3")
        fresh_cache.store(request, "batched", outcomes)
        assert fresh_cache.lookup(request, "batched") == outcomes
        monkeypatch.setattr(cache_module, "CODE_VERSION", "sim-v4")
        assert fresh_cache.lookup(request, "batched") is None
        # A fresh store under the current version is served again.
        fresh_cache.store(request, "batched", outcomes)
        assert fresh_cache.lookup(request, "batched") == outcomes


class TestDiskLayer:
    def test_round_trip_equals_fresh_simulation_bit_for_bit(self, tmp_path):
        request = _request(n_trials=10)
        writer = SimulationCache(directory=tmp_path)
        fresh = simulate(request, backend="closed_form", cache=False)
        writer.store(request, "closed_form", fresh.outcomes)
        # A separate instance sees only the disk layer, like a new
        # process would.
        reader = SimulationCache(directory=tmp_path)
        loaded = reader.lookup(request, "closed_form")
        assert loaded == fresh.outcomes
        again = simulate(request, backend="closed_form", cache=False)
        assert loaded == again.outcomes
        assert reader.info().hits_disk == 1

    def test_corrupt_disk_entry_is_quarantined_not_fatal(self, tmp_path):
        request = _request()
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        cache.store(request, "batched", outcomes)
        (name,) = [path.name for path in tmp_path.glob("*.pkl")]
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a checksummed container")
        reader = SimulationCache(directory=tmp_path)
        assert reader.lookup(request, "batched") is None
        # The damaged entry is moved out of the served store, not
        # deleted: preserved under quarantine/ for inspection.
        assert list(tmp_path.glob("*.pkl")) == []
        assert (tmp_path / "quarantine" / name).is_file()
        assert reader.info().quarantined == 1

    def test_truncated_disk_entry_fails_the_checksum(self, tmp_path):
        request = _request()
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        cache.store(request, "batched", outcomes)
        (path,) = tmp_path.glob("*.pkl")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        reader = SimulationCache(directory=tmp_path)
        assert reader.lookup(request, "batched") is None
        assert reader.info().quarantined == 1

    def test_disk_payload_validates_fingerprint(self, tmp_path):
        """A hash collision cannot serve the wrong request's outcomes."""
        request = _request()
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        cache.store(request, "batched", outcomes)
        other = _request(seed=99)
        path = cache._path_for(cache_key(request, "batched"))
        payload = cache_module._decode_entry(path.read_bytes())
        payload["fingerprint"] = request_fingerprint(other)
        # Re-encode with a *valid* checksum so only the fingerprint
        # validation — not the integrity layer — rejects the entry.
        path.write_bytes(cache_module._encode_entry(payload))
        reader = SimulationCache(directory=tmp_path)
        assert reader.lookup(request, "batched") is None
        assert reader.info().quarantined == 0

    def test_verify_reports_and_repairs_corrupt_entries(self, tmp_path):
        cache = SimulationCache(directory=tmp_path)
        good = _request()
        bad = _request(seed=77)
        outcomes = simulate(good, backend="batched", cache=False).outcomes
        cache.store(good, "batched", outcomes)
        cache.store(bad, "batched", outcomes)
        bad_path = cache._path_for(cache_key(bad, "batched"))
        data = bad_path.read_bytes()
        middle = len(data) // 2
        bad_path.write_bytes(
            data[:middle] + bytes([data[middle] ^ 0xFF]) + data[middle + 1:]
        )
        report = cache.verify()
        assert report.scanned == 2
        assert report.ok == 1
        assert report.corrupt == (bad_path.name,)
        assert report.quarantined == 0  # report-only without --repair
        assert bad_path.is_file()
        repaired = cache.verify(repair=True)
        assert repaired.corrupt == (bad_path.name,)
        assert repaired.quarantined == 1
        assert not bad_path.is_file()
        assert (tmp_path / "quarantine" / bad_path.name).is_file()
        # The good entry still round-trips after the sweep.
        reader = SimulationCache(directory=tmp_path)
        assert reader.lookup(good, "batched") == outcomes

    def test_unwritable_directory_degrades_to_memory_only(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = SimulationCache(directory=blocked / "sub")
        request = _request()
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        cache.store(request, "batched", outcomes)
        assert cache.lookup(request, "batched") == outcomes
        info = cache.info()
        assert not info.disk_enabled
        assert info.disk_error

    def test_reconfiguring_after_degradation_restores_the_disk_layer(
        self, tmp_path, fresh_cache
    ):
        """Runtime degradation is state, not intent: a new directory
        must bring disk caching back."""
        blocked = tmp_path / "blocked-file"
        blocked.write_text("a file, not a directory")
        degraded = configure_cache(directory=blocked / "sub")
        request = _request()
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        degraded.store(request, "batched", outcomes)
        assert not degraded.info().disk_enabled
        writable = tmp_path / "writable"
        recovered = configure_cache(directory=writable)
        recovered.store(request, "batched", outcomes)
        assert recovered.info().disk_enabled
        assert len(list(writable.glob("*.pkl"))) == 1

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(_request(), backend="batched", cache=False).outcomes
        cache.store(_request(), "batched", outcomes)
        assert cache.clear() == 1
        assert list(tmp_path.glob("*.pkl")) == []


class TestShardEntries:
    """Per-shard entries: the job layer's resume substrate."""

    def test_shard_round_trip(self, tmp_path):
        request = _request(n_trials=6)
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="closed_form", cache=False).outcomes
        shard = range(0, 3)
        cache.store_shard(request, "closed_form", shard, outcomes[:3])
        reader = SimulationCache(directory=tmp_path)
        assert reader.lookup_shard(request, "closed_form", shard) == outcomes[:3]

    def test_shard_key_is_disjoint_from_full_key(self, tmp_path):
        request = _request(n_trials=6)
        assert shard_cache_key(request, "closed_form", 0, 6) != cache_key(
            request, "closed_form"
        )
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="closed_form", cache=False).outcomes
        cache.store_shard(request, "closed_form", range(0, 6), outcomes)
        # A full-request lookup must not be satisfied by a shard entry,
        # even one covering every trial.
        assert cache.lookup(request, "closed_form") is None

    def test_different_ranges_are_different_entries(self, tmp_path):
        request = _request(n_trials=6)
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="closed_form", cache=False).outcomes
        cache.store_shard(request, "closed_form", range(0, 3), outcomes[:3])
        assert cache.lookup_shard(request, "closed_form", range(3, 6)) is None
        assert cache.lookup_shard(request, "closed_form", range(0, 2)) is None

    def test_shard_counters_break_out_shard_traffic(self, tmp_path):
        """Shard lookups count in both aggregate and shard counters."""
        request = _request(n_trials=6)
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="closed_form", cache=False).outcomes

        assert cache.lookup_shard(request, "closed_form", range(0, 3)) is None
        cache.store_shard(request, "closed_form", range(0, 3), outcomes[:3])
        assert cache.lookup_shard(
            request, "closed_form", range(0, 3)
        ) == outcomes[:3]
        cache.store(request, "closed_form", outcomes)
        assert cache.lookup(request, "closed_form") == outcomes

        info = cache.info()
        assert info.hits_shard == 1
        assert info.misses_shard == 1
        assert info.stores_shard == 1
        # Aggregates include the shard traffic plus the full-request
        # lookup/store pair.
        assert info.hits_memory + info.hits_disk == 2
        assert info.misses == 1
        assert info.stores == 2
        assert any("shard level" in line for line in info.summary_lines())


class TestPrune:
    """LRU disk pruning: eviction order and bound enforcement."""

    def _populate(self, tmp_path, count):
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(_request(), backend="batched", cache=False).outcomes
        paths = []
        for seed in range(count):
            request = _request(seed=seed)
            cache.store(request, "batched", outcomes)
            paths.append(cache._path_for(cache_key(request, "batched")))
        return cache, paths

    def test_prune_enforces_the_byte_bound(self, tmp_path):
        cache, paths = self._populate(tmp_path, 6)
        entry_size = paths[0].stat().st_size
        budget = int(entry_size * 2.5)  # room for exactly two entries
        result = cache.prune(budget)
        assert result.remaining_bytes <= budget
        assert result.remaining_files == 2
        assert result.removed_files == 4
        assert result.freed_bytes == 4 * entry_size
        assert len(list(tmp_path.glob("*.pkl"))) == 2

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        cache, paths = self._populate(tmp_path, 4)
        # Hand-set last_used: entry 2 oldest, then 0, then 3, then 1.
        now = time.time()
        ages = {2: 400, 0: 300, 3: 200, 1: 100}
        for index, age in ages.items():
            os.utime(paths[index], (now - age, now - age))
        entry_size = paths[0].stat().st_size
        result = cache.prune(int(entry_size * 2.5))
        assert result.removed_files == 2
        survivors = {path for path in tmp_path.glob("*.pkl")}
        assert paths[2] not in survivors and paths[0] not in survivors
        assert paths[3] in survivors and paths[1] in survivors

    def test_disk_hit_refreshes_last_used(self, tmp_path):
        request = _request(seed=5)
        cache = SimulationCache(directory=tmp_path)
        outcomes = simulate(request, backend="batched", cache=False).outcomes
        cache.store(request, "batched", outcomes)
        path = cache._path_for(cache_key(request, "batched"))
        stale = time.time() - 10_000
        os.utime(path, (stale, stale))
        reader = SimulationCache(directory=tmp_path)  # disk hit, not memory
        assert reader.lookup(request, "batched") == outcomes
        assert path.stat().st_mtime > stale + 5_000

    def test_prune_to_zero_clears_the_disk(self, tmp_path):
        cache, _ = self._populate(tmp_path, 3)
        result = cache.prune(0)
        assert result.remaining_files == 0
        assert result.remaining_bytes == 0
        assert list(tmp_path.glob("*.pkl")) == []

    def test_prune_under_budget_is_a_no_op(self, tmp_path):
        cache, _ = self._populate(tmp_path, 3)
        result = cache.prune(10**12)
        assert result.removed_files == 0
        assert result.remaining_files == 3

    def test_prune_rejects_negative_budget(self, tmp_path):
        from repro.errors import InvalidParameterError

        cache = SimulationCache(directory=tmp_path)
        with pytest.raises(InvalidParameterError):
            cache.prune(-1)


class TestSimulateIntegration:
    def test_second_invocation_performs_zero_simulations(self, fresh_cache):
        request = _request(seed=1234)
        before = backend_run_count()
        first = simulate(request, backend="batched")
        after_first = backend_run_count()
        second = simulate(request, backend="batched")
        after_second = backend_run_count()
        assert after_first == before + 1
        assert after_second == after_first  # served from cache
        assert list(first.moves_or_budget()) == list(second.moves_or_budget())

    def test_auto_and_explicit_batched_share_entries(self, fresh_cache):
        """The key uses the *resolved* backend, not the request string."""
        request = _request(seed=4321)  # n_trials > 1 -> auto = batched
        before = backend_run_count()
        simulate(request, backend="batched")
        simulate(request, backend="auto")
        assert backend_run_count() == before + 1

    def test_cache_false_forces_execution(self, fresh_cache):
        request = _request(seed=777)
        before = backend_run_count()
        simulate(request, backend="batched")
        simulate(request, backend="batched", cache=False)
        assert backend_run_count() == before + 2

    def test_enabled_flag_gates_default_consultation(self, fresh_cache):
        request = _request(seed=888)
        configure_cache(enabled=False)
        try:
            before = backend_run_count()
            simulate(request, backend="batched")
            simulate(request, backend="batched")
            assert backend_run_count() == before + 2
        finally:
            configure_cache(enabled=True)
        simulate(request, backend="batched")
        before = backend_run_count()
        simulate(request, backend="batched")
        assert backend_run_count() == before

    def test_get_cache_is_process_wide(self, fresh_cache):
        assert get_cache() is fresh_cache
