"""Unit tests for repro.grid.geometry."""

from __future__ import annotations

import pytest

from repro.grid.geometry import (
    Direction,
    chebyshev,
    chebyshev_norm,
    l_path_hit_moves,
    l_path_hits,
    l_path_points,
    manhattan,
    manhattan_norm,
    square_boundary_points,
    square_lattice,
)


class TestDirections:
    def test_vectors_are_unit_steps(self):
        for direction in Direction:
            dx, dy = direction.vector
            assert abs(dx) + abs(dy) == 1

    def test_opposites_cancel(self):
        for direction in Direction:
            dx, dy = direction.vector
            ox, oy = direction.opposite.vector
            assert (dx + ox, dy + oy) == (0, 0)

    def test_opposite_is_involution(self):
        for direction in Direction:
            assert direction.opposite.opposite is direction

    def test_vertical_flag(self):
        assert Direction.UP.is_vertical
        assert Direction.DOWN.is_vertical
        assert not Direction.LEFT.is_vertical
        assert not Direction.RIGHT.is_vertical

    def test_step_moves_one_cell(self):
        assert Direction.UP.step((3, -2)) == (3, -1)
        assert Direction.LEFT.step((0, 0)) == (-1, 0)


class TestNorms:
    def test_chebyshev_examples(self):
        assert chebyshev((0, 0), (3, -4)) == 4
        assert chebyshev_norm((5, 5)) == 5
        assert chebyshev_norm((0, 0)) == 0

    def test_manhattan_examples(self):
        assert manhattan((1, 1), (-2, 3)) == 5
        assert manhattan_norm((-3, 4)) == 7

    def test_chebyshev_at_most_manhattan(self):
        for point in [(-4, 7), (0, 0), (9, 9), (-2, -2)]:
            assert chebyshev_norm(point) <= manhattan_norm(point)


class TestLPath:
    def test_enumeration_counts_points_once(self):
        points = list(l_path_points(1, 3, -1, 2))
        assert len(points) == 3 + 2 + 1  # vertical leg + horizontal leg + origin
        assert len(set(points)) == len(points)

    def test_enumeration_shape(self):
        points = list(l_path_points(1, 2, 1, 2))
        assert points == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]

    def test_zero_legs_visit_only_origin(self):
        assert list(l_path_points(1, 0, 1, 0)) == [(0, 0)]

    def test_hits_matches_enumeration(self):
        cases = [(1, 3, 1, 2), (-1, 2, 1, 0), (1, 0, -1, 4), (-1, 5, -1, 5)]
        for sv, lv, sh, lh in cases:
            visited = set(l_path_points(sv, lv, sh, lh))
            for x in range(-6, 7):
                for y in range(-6, 7):
                    assert l_path_hits((x, y), sv, lv, sh, lh) == ((x, y) in visited)

    def test_hit_moves_matches_enumeration_order(self):
        sv, lv, sh, lh = 1, 3, -1, 2
        path = list(l_path_points(sv, lv, sh, lh))
        for index, point in enumerate(path):
            assert l_path_hit_moves(point, sv, lv, sh, lh) == index

    def test_hit_moves_none_on_miss(self):
        assert l_path_hit_moves((5, 5), 1, 2, 1, 2) is None

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            list(l_path_points(0, 1, 1, 1))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            list(l_path_points(1, -1, 1, 1))


class TestSquares:
    def test_lattice_count(self):
        assert len(list(square_lattice(3))) == 49
        assert list(square_lattice(0)) == [(0, 0)]

    def test_lattice_bounds(self):
        for point in square_lattice(2):
            assert chebyshev_norm(point) <= 2

    def test_boundary_count(self):
        assert len(list(square_boundary_points(3))) == 24
        assert list(square_boundary_points(0)) == [(0, 0)]

    def test_boundary_is_exact_ring(self):
        ring = set(square_boundary_points(4))
        assert all(chebyshev_norm(p) == 4 for p in ring)
        brute = {p for p in square_lattice(4) if chebyshev_norm(p) == 4}
        assert ring == brute

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            list(square_lattice(-1))
        with pytest.raises(ValueError):
            list(square_boundary_points(-2))
