"""Unit tests for the cost-model selector and adaptive sampling.

Covers the tentpole contracts of :mod:`repro.sim.selector` and
:func:`repro.sim.jobs.simulate_adaptive`:

* profile persistence and invalidation (staleness, CODE_VERSION bump,
  foreign machine fingerprint);
* deterministic planning from a profile — backend choice by predicted
  cost, shard-count optimization, tie-breaking, accelerator pinning,
  static fallback when the profile holds no usable observation;
* plan execution through ``JobManager.submit(plan=...)``;
* adaptive sampling: early stopping at the CI target, index-order batch
  consumption, and bit-compatible shard-cache replay proven with
  :func:`backend_run_count`.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import InvalidParameterError
from repro.sim import simulate
from repro.sim.backends import AlgorithmSpec, SimulationRequest, resolve_backend
from repro.sim.cache import CODE_VERSION, configure_cache, get_cache
from repro.sim.jobs import backend_run_count, simulate_adaptive
from repro.sim.selector import (
    BASE_BUDGET,
    CalibrationProfile,
    CostEntry,
    SimulationPlan,
    calibrate,
    clear_profile,
    load_profile,
    machine_fingerprint,
    plan_request,
    profile_path,
    save_profile,
    selector_payload,
)


@pytest.fixture()
def isolated_cache(tmp_path):
    """Point the process cache (and thus the profile) at a fresh dir."""
    previous = get_cache().directory
    configure_cache(directory=tmp_path)
    yield tmp_path
    configure_cache(directory=previous)


def _request(spec=None, **overrides):
    defaults = dict(
        algorithm=spec or AlgorithmSpec.algorithm1(8),
        n_agents=2,
        target=(5, 3),
        move_budget=100_000,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationRequest(**defaults)


def _profile(entries, shard_overhead=0.01, **overrides):
    """A synthetic in-memory profile (never touches disk)."""
    defaults = dict(
        entries=entries,
        shard_overhead_seconds=shard_overhead,
        created_at=1.0,
    )
    defaults.update(overrides)
    return CalibrationProfile(**defaults)


class TestMachineFingerprint:
    def test_has_the_drift_axes(self):
        fingerprint = machine_fingerprint()
        for key in ("cpu_model", "cpu_count", "numpy", "platform", "python"):
            assert key in fingerprint
        assert fingerprint["cpu_count"] >= 1

    def test_stable_within_a_process(self):
        assert machine_fingerprint() == machine_fingerprint()


class TestProfilePersistence:
    def test_roundtrip(self, isolated_cache):
        profile = _profile(
            {"batched|algorithm1": CostEntry(0.001, 1e-5, 0.8)},
            created_at=1_000.0,
        )
        path = save_profile(profile)
        assert path == profile_path()
        loaded = load_profile(now=1_001.0)
        assert loaded is not None
        entry = loaded.entry("batched", "algorithm1")
        assert entry == CostEntry(0.001, 1e-5, 0.8)
        assert loaded.shard_overhead_seconds == profile.shard_overhead_seconds

    def test_stale_profile_is_ignored(self, isolated_cache):
        save_profile(_profile({}, created_at=1_000.0))
        assert load_profile(now=1_001.0) is not None
        assert load_profile(now=1_000.0 + 8 * 24 * 3600) is None

    def test_code_version_bump_invalidates(self, isolated_cache):
        save_profile(_profile({}, created_at=1_000.0))
        payload = json.loads(profile_path().read_text())
        assert payload["code_version"] == CODE_VERSION
        payload["code_version"] = "sim-v0-ancient"
        profile_path().write_text(json.dumps(payload))
        assert load_profile(now=1_001.0) is None

    def test_foreign_machine_invalidates(self, isolated_cache):
        save_profile(_profile({}, created_at=1_000.0))
        payload = json.loads(profile_path().read_text())
        payload["machine"]["cpu_model"] = "Quantum Abacus Mk II"
        profile_path().write_text(json.dumps(payload))
        assert load_profile(now=1_001.0) is None

    def test_garbage_file_is_ignored(self, isolated_cache):
        profile_path().parent.mkdir(parents=True, exist_ok=True)
        profile_path().write_text("not json {")
        assert load_profile() is None

    def test_clear_profile(self, isolated_cache):
        assert clear_profile() is False
        save_profile(_profile({}))
        assert clear_profile() is True
        assert load_profile() is None


class TestCalibration:
    def test_restricted_calibration_fits_positive_models(self, isolated_cache):
        profile = calibrate(
            families=["algorithm1"],
            backends=["batched", "closed_form"],
            measure_pool=False,
            save=True,
        )
        assert set(profile.entries) == {
            "batched|algorithm1", "closed_form|algorithm1"
        }
        for entry in profile.entries.values():
            assert entry.per_trial > 0
            assert entry.intercept >= 0
            assert 0.0 <= entry.budget_exponent <= 2.0
        # Persisted and immediately loadable on the same machine.
        assert load_profile() is not None

    def test_calibrate_rejects_non_base_budget(self, isolated_cache):
        with pytest.raises(InvalidParameterError):
            calibrate(budgets=(BASE_BUDGET + 1, 99_999), measure_pool=False)
        with pytest.raises(InvalidParameterError):
            calibrate(budgets=(BASE_BUDGET, BASE_BUDGET), measure_pool=False)

    def test_unknown_family_is_an_error(self, isolated_cache):
        with pytest.raises(InvalidParameterError):
            calibrate(families=["warp-search"], measure_pool=False)


class TestPlanning:
    def test_deterministic_given_a_profile(self):
        profile = _profile({
            "batched|algorithm1": CostEntry(0.001, 1e-5, 1.0),
            "closed_form|algorithm1": CostEntry(0.0001, 2e-3, 1.0),
            "reference|algorithm1": CostEntry(0.0, 0.2, 1.0),
        })
        request = _request(n_trials=200)
        plans = {plan_request(request, workers=4, profile=profile)
                 for _ in range(5)}
        assert len(plans) == 1
        plan = plans.pop()
        assert plan.source == "cost-model"
        assert plan.backend == "batched"
        assert plan.predicted_seconds is not None

    def test_cost_model_can_override_static_priority(self):
        # Static auto would pick batched for a batch; make the profile
        # say closed_form is 100x cheaper and the plan must follow it.
        profile = _profile({
            "batched|algorithm1": CostEntry(0.0, 1e-2, 1.0),
            "closed_form|algorithm1": CostEntry(0.0, 1e-4, 1.0),
        })
        request = _request(n_trials=100)
        assert resolve_backend(request).name == "batched"
        plan = plan_request(request, workers=1, profile=profile)
        assert plan.backend == "closed_form"

    def test_equal_cost_tie_breaks_by_static_priority(self):
        entry = CostEntry(0.0, 1e-4, 1.0)
        profile = _profile({
            "batched|algorithm1": entry,
            "closed_form|algorithm1": entry,
        })
        plan = plan_request(_request(n_trials=100), workers=1, profile=profile)
        # Same predicted seconds -> the static rank (batched p30 beats
        # closed_form p5 on batches) decides.
        assert plan.backend == "batched"

    def test_shard_count_minimizes_predicted_wall_clock(self):
        # 1.0s of compute, 10ms per shard: with cap 8 the optimum of
        # t(k) = 1/k + 0.01k over 1..8 is k=8 (0.205s).
        profile = _profile(
            {"closed_form|algorithm1": CostEntry(0.0, 0.01, 0.0)},
            shard_overhead=0.01,
        )
        plan = plan_request(
            _request(n_trials=100), backend="closed_form",
            workers=8, profile=profile,
        )
        assert plan.n_shards == 8
        assert plan.workers == 8
        assert plan.predicted_seconds == pytest.approx(1.0 / 8 + 0.08)

    def test_shard_overhead_keeps_small_jobs_unsharded(self):
        # 10ms of compute against 10ms/shard dispatch: sharding can
        # only lose; the plan must stay single-shard even with workers.
        profile = _profile(
            {"closed_form|algorithm1": CostEntry(0.0, 1e-4, 0.0)},
            shard_overhead=0.01,
        )
        plan = plan_request(
            _request(n_trials=100), backend="closed_form",
            workers=8, profile=profile,
        )
        assert plan.n_shards == 1

    def test_min_trials_per_shard_caps_the_split(self):
        profile = _profile(
            {"closed_form|algorithm1": CostEntry(0.0, 1.0, 0.0)},
            shard_overhead=1e-6,
        )
        plan = plan_request(
            _request(n_trials=8), backend="closed_form",
            workers=16, profile=profile,
        )
        # 8 trials / MIN_TRIALS_PER_SHARD(4) -> at most 2 shards, even
        # with enormous compute and an eager worker cap.
        assert plan.n_shards == 2

    def test_missing_entry_falls_back_to_static(self):
        profile = _profile({"batched|algorithm1": CostEntry(0.0, 1e-4, 1.0)})
        request = _request(AlgorithmSpec.spiral())  # reference-only
        plan = plan_request(request, workers=2, profile=profile)
        assert plan.source == "static"
        assert plan.backend == "reference"

    def test_explicit_backend_is_pinned_but_still_sharded(self):
        profile = _profile({
            "batched|algorithm1": CostEntry(0.0, 1e-6, 1.0),
            "reference|algorithm1": CostEntry(0.0, 0.05, 1.0),
        }, shard_overhead=0.001)
        plan = plan_request(
            _request(n_trials=64), backend="reference",
            workers=4, profile=profile,
        )
        assert plan.backend == "reference"
        assert plan.source == "cost-model"
        assert plan.n_shards == 4

    def test_worker_cap_validates(self):
        with pytest.raises(InvalidParameterError):
            plan_request(_request(), workers=0, profile=None)

    def test_payload_shape(self):
        payload = selector_payload(profile=None)
        assert payload["calibrated"] is False
        assert set(payload["plans"]) == {
            "algorithm1", "nonuniform", "uniform",
            "doubly-uniform", "random-walk", "feinerman",
        }
        for plan in payload["plans"].values():
            assert {"backend", "n_shards", "workers", "device",
                    "predicted_seconds", "source"} <= set(plan)
            assert plan["source"] == "static"


class TestPlanExecution:
    def test_simulate_executes_a_plan(self, isolated_cache):
        request = _request(n_trials=12, seed=31)
        plan = SimulationPlan(
            backend="closed_form", n_shards=3, workers=3,
            predicted_seconds=0.1, source="cost-model",
        )
        planned = simulate(request, plan=plan, cache=False)
        assert planned.backend == "closed_form"
        # Per-trial backends are bit-identical whatever the layout.
        unplanned = simulate(request, backend="closed_form", cache=False)
        assert list(planned.moves_or_budget()) == list(
            unplanned.moves_or_budget()
        )

    def test_conflicting_backend_and_plan_rejected(self):
        from repro.sim.jobs import get_manager

        plan = SimulationPlan(backend="batched", n_shards=1, workers=1)
        with pytest.raises(InvalidParameterError):
            get_manager().submit(
                _request(n_trials=4), backend="reference", plan=plan
            )

    def test_planned_shards_share_the_unplanned_cache_layout(
        self, isolated_cache
    ):
        """A planned job must hit the shard entries a fixed workers=N
        run of the same layout wrote — same _chunk_trials geometry."""
        request = _request(n_trials=10, seed=5)
        simulate(request, backend="closed_form", workers=2)
        before = backend_run_count()
        plan = SimulationPlan(backend="closed_form", n_shards=2, workers=2)
        simulate(request, plan=plan)
        assert backend_run_count() == before  # full-entry or shard hits


class TestAdaptiveSampling:
    def test_converges_early_on_a_high_hit_rate_family(self, isolated_cache):
        request = _request(
            AlgorithmSpec.algorithm1(8), n_agents=4, target=(8, 8),
            move_budget=50_000, n_trials=600, seed=11,
        )
        run = simulate_adaptive(
            request, metric="hit_probability",
            target_half_width=0.05, batch_size=32, cache=False,
        )
        assert run.converged
        assert run.trials_used < run.max_trials
        assert run.trials_used % 32 == 0
        assert run.half_width <= 0.05
        assert len(run.result.outcomes) == run.trials_used
        assert run.batches_run == run.trials_used // 32

    def test_index_order_prefix_is_bit_compatible(self, isolated_cache):
        """Adaptive trials are exactly the fixed run's leading trials."""
        request = _request(n_trials=64, seed=13)
        run = simulate_adaptive(
            request, metric="moves", target_half_width=1e9,
            batch_size=16, backend="closed_form", cache=False,
        )
        fixed = simulate(request, backend="closed_form", cache=False)
        assert run.trials_used >= 16
        prefix = list(fixed.moves_or_budget())[: run.trials_used]
        assert list(run.result.moves_or_budget()) == prefix

    def test_replay_is_served_from_the_shard_cache(self, isolated_cache):
        request = _request(
            AlgorithmSpec.algorithm1(8), n_agents=4, target=(8, 8),
            move_budget=50_000, n_trials=600, seed=11,
        )
        first = simulate_adaptive(
            request, target_half_width=0.05, batch_size=32
        )
        assert first.batches_run > 0
        before = backend_run_count()
        second = simulate_adaptive(
            request, target_half_width=0.05, batch_size=32
        )
        assert backend_run_count() == before, "replay re-simulated"
        assert second.batches_run == 0
        assert second.batches_cached == first.batches_run
        assert second.trials_used == first.trials_used
        assert second.estimate == first.estimate
        assert list(second.result.moves_or_budget()) == list(
            first.result.moves_or_budget()
        )

    def test_budget_exhaustion_stores_the_full_entry(self, isolated_cache):
        request = _request(n_trials=48, seed=3)
        run = simulate_adaptive(
            request, metric="hit_probability",
            target_half_width=1e-6, batch_size=16,
        )
        assert not run.converged
        assert run.trials_used == 48
        # The assembled full-request entry must now serve a fixed run.
        before = backend_run_count()
        fixed = simulate(request)
        assert backend_run_count() == before
        assert len(fixed.outcomes) == 48

    def test_agresti_coull_never_stops_after_one_all_hit_batch(self):
        """At p_hat=1 a Wald interval is zero-width; Agresti-Coull must
        keep the width honest so tiny all-hit batches don't stop."""
        from repro.sim.jobs import _adaptive_estimate
        from repro.sim.metrics import SearchOutcome

        outcomes = [
            SearchOutcome(
                found=True, m_moves=10, m_steps=None, finder=0,
                n_agents=2, move_budget=100,
            )
            for _ in range(8)
        ]
        estimate, half_width = _adaptive_estimate(
            "hit_probability", outcomes, 0.95
        )
        assert 0.0 < estimate < 1.0
        assert half_width > 0.1

    def test_parameter_validation(self):
        request = _request(n_trials=8)
        with pytest.raises(InvalidParameterError):
            simulate_adaptive(request, metric="vibes")
        with pytest.raises(InvalidParameterError):
            simulate_adaptive(request, target_half_width=0.0)
        with pytest.raises(InvalidParameterError):
            simulate_adaptive(request, confidence=1.0)
        with pytest.raises(InvalidParameterError):
            simulate_adaptive(request, batch_size=0)
        with pytest.raises(InvalidParameterError):
            simulate_adaptive(request, min_trials=1)


class TestIntrospectionSurfaces:
    def test_wire_plan_encoding(self):
        from repro.server.wire import plan_to_wire

        plan = SimulationPlan(
            backend="batched", n_shards=2, workers=2,
            predicted_seconds=0.123456789, source="cost-model",
        )
        payload = plan_to_wire(plan)
        assert payload["backend"] == "batched"
        assert payload["n_shards"] == 2
        assert payload["predicted_seconds"] == pytest.approx(0.123457)
        assert payload["source"] == "cost-model"

    def test_cli_backends_json_matches_server_shape(self, capsys):
        from repro.cli import main

        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"wire", "backends", "auto_resolution",
                "kernel_namespaces", "selector"} <= set(payload)
        for entry in payload["backends"].values():
            assert "algorithms" in entry and "declines" in entry
        assert "plans" in payload["selector"]
