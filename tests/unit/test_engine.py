"""Unit tests for the faithful engine (repro.sim.engine)."""

from __future__ import annotations

from typing import Iterator

import numpy as np
import pytest

from repro.core.actions import Action
from repro.core.base import SearchAlgorithm
from repro.errors import InvalidParameterError
from repro.grid.world import GridWorld
from repro.sim.engine import EngineConfig, SearchEngine
from repro.sim.trace import TraceRecorder


class ScriptedAlgorithm(SearchAlgorithm):
    """Plays a fixed action script, then idles on NONE (deterministic)."""

    def __init__(self, script: list[Action]) -> None:
        self._script = script

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        yield from self._script
        while True:
            yield Action.NONE


class FiniteAlgorithm(SearchAlgorithm):
    """A process that terminates (engines must tolerate StopIteration)."""

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        yield Action.UP
        yield Action.UP


def run_script(script, target, budget=100, n_agents=1, **config_kwargs):
    engine = SearchEngine(EngineConfig(move_budget=budget, **config_kwargs))
    world = GridWorld(target=target, distance_bound=64)
    return engine.run(ScriptedAlgorithm(script), n_agents, world, rng=1)


class TestEngineBasics:
    def test_finds_target_on_path(self):
        outcome = run_script([Action.UP, Action.UP, Action.RIGHT], (0, 2))
        assert outcome.found
        assert outcome.m_moves == 2
        assert outcome.m_steps == 2
        assert outcome.finder == 0

    def test_moves_exclude_none_steps(self):
        script = [Action.NONE, Action.UP, Action.NONE, Action.UP]
        outcome = run_script(script, (0, 2))
        assert outcome.m_moves == 2
        assert outcome.m_steps == 4  # steps include NONE

    def test_origin_teleports_without_move(self):
        script = [Action.UP, Action.ORIGIN, Action.RIGHT]
        outcome = run_script(script, (1, 0))
        assert outcome.found
        assert outcome.m_moves == 2  # UP + RIGHT; ORIGIN costs nothing

    def test_origin_position_reset(self):
        # After ORIGIN, the agent is back at (0, 0): one UP reaches (0, 1).
        script = [Action.UP, Action.UP, Action.ORIGIN, Action.UP]
        outcome = run_script(script, (0, 1))
        assert outcome.found
        assert outcome.m_moves == 1  # found on the way up, first move

    def test_unfound_returns_budget_info(self):
        outcome = run_script([Action.DOWN] * 5, (10, 10), budget=20)
        assert not outcome.found
        assert outcome.m_moves is None
        assert outcome.moves_or_budget == 20

    def test_target_at_origin_found_immediately(self):
        engine = SearchEngine(EngineConfig(move_budget=10))
        world = GridWorld(target=(0, 0), distance_bound=0)
        outcome = engine.run(ScriptedAlgorithm([Action.UP]), 3, world, rng=1)
        assert outcome.found and outcome.m_moves == 0

    def test_step_budget_stops_none_spinners(self):
        engine = SearchEngine(EngineConfig(move_budget=1000, step_budget=50))
        world = GridWorld(target=(5, 5), distance_bound=8)
        outcome = engine.run(ScriptedAlgorithm([]), 1, world, rng=1)
        assert not outcome.found
        assert outcome.per_agent[0].total_steps == 50

    def test_finite_process_is_tolerated(self):
        engine = SearchEngine(EngineConfig(move_budget=100))
        world = GridWorld(target=(9, 9), distance_bound=9)
        outcome = engine.run(FiniteAlgorithm(), 1, world, rng=1)
        assert not outcome.found
        assert outcome.per_agent[0].total_moves == 2

    def test_rejects_zero_agents(self):
        engine = SearchEngine(EngineConfig(move_budget=10))
        world = GridWorld(target=(1, 1), distance_bound=2)
        with pytest.raises(InvalidParameterError):
            engine.run(ScriptedAlgorithm([]), 0, world, rng=1)

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            EngineConfig(move_budget=0)
        with pytest.raises(InvalidParameterError):
            EngineConfig(move_budget=5, step_budget=0)

    def test_explicit_generator_list(self):
        engine = SearchEngine(EngineConfig(move_budget=10))
        world = GridWorld(target=(0, 1), distance_bound=1)
        generators = [np.random.default_rng(0), np.random.default_rng(1)]
        outcome = engine.run(ScriptedAlgorithm([Action.UP]), 2, world, generators)
        assert outcome.found

    def test_generator_count_mismatch_rejected(self):
        engine = SearchEngine(EngineConfig(move_budget=10))
        world = GridWorld(target=(0, 1), distance_bound=1)
        with pytest.raises(InvalidParameterError):
            engine.run(
                ScriptedAlgorithm([Action.UP]), 2, world, [np.random.default_rng(0)]
            )


class TestReturnHandling:
    def test_counted_returns_charge_manhattan(self):
        script = [Action.UP, Action.UP, Action.ORIGIN, Action.RIGHT]
        outcome = run_script(script, (1, 0), count_return_moves=True)
        # 2 up-moves + 2 return moves + 1 right = 5 at find.
        assert outcome.m_moves == 5

    def test_return_path_check_finds_target_on_the_way_home(self):
        # Outbound path: (0,1), (0,2), (1,2), (2,2).  The Bresenham
        # return from (2,2) passes (1,1), which outbound never touches.
        script = [Action.UP, Action.UP, Action.RIGHT, Action.RIGHT, Action.ORIGIN]
        missed = run_script(script, (1, 1))
        assert not missed.found  # default: returns are not searched
        found = run_script(script, (1, 1), check_return_path=True)
        assert found.found

    def test_return_visits_recorded_when_tracking(self):
        engine = SearchEngine(
            EngineConfig(move_budget=50, check_return_path=True)
        )
        world = GridWorld(target=(9, 9), distance_bound=9, track_visits=True)
        engine.run(
            ScriptedAlgorithm([Action.UP, Action.UP, Action.ORIGIN]),
            1,
            world,
            rng=1,
        )
        assert (0, 1) in world.visited_cells


class TestMinimumSemantics:
    def test_minimum_over_agents_is_exact(self):
        """Two scripted colonies: the slow finder must not win."""

        class TwoScripts(SearchAlgorithm):
            def __init__(self):
                self._count = 0

            def process(self, rng: np.random.Generator) -> Iterator[Action]:
                agent_index = self._count
                self._count += 1
                if agent_index == 0:
                    # Wanders, then finds at move 6.
                    yield from [Action.DOWN, Action.DOWN, Action.ORIGIN]
                    yield from [Action.UP, Action.UP, Action.UP, Action.RIGHT]
                else:
                    # Direct: finds at move 4.
                    yield from [Action.UP, Action.UP, Action.UP, Action.RIGHT]
                while True:
                    yield Action.NONE

        engine = SearchEngine(EngineConfig(move_budget=100))
        world = GridWorld(target=(1, 3), distance_bound=4)
        outcome = engine.run(TwoScripts(), 2, world, rng=5)
        assert outcome.found
        assert outcome.m_moves == 4
        assert outcome.finder == 1

    def test_trace_recording(self):
        engine = SearchEngine(EngineConfig(move_budget=10))
        world = GridWorld(target=(5, 5), distance_bound=6)
        trace = TraceRecorder()
        engine.run(
            ScriptedAlgorithm([Action.UP, Action.RIGHT, Action.NONE]),
            1,
            world,
            rng=1,
            trace=trace,
        )
        execution = trace.execution(0)
        assert execution.actions[:3] == [Action.UP, Action.RIGHT, Action.NONE]
        assert execution.positions[:2] == [(0, 1), (1, 1)]
        assert execution.n_moves == 2
        assert execution.moves_only() == [Action.UP, Action.RIGHT]

    def test_per_agent_outcomes_reported(self):
        outcome = run_script([Action.UP], (0, 1), n_agents=3)
        assert len(outcome.per_agent) == 3
        assert all(agent.found for agent in outcome.per_agent)
