"""Distribution-level regression against committed golden samples.

The ROADMAP's distribution-regression item: instead of re-running the
(slow) reference engine every time a vectorized backend is refactored,
``tests/golden/`` freezes move-count samples produced once by the
trusted per-trial ``closed_form`` backend, and this test diffs the
``batched`` backend's output distribution against the recording with a
two-sample KS test.

Everything here is deterministic — fixed seeds on both sides — so the
KS statistic is a constant, not a random variable: the test cannot
flake, and any change in the number signals a semantic change in the
batched sampling scheme (which must come with a
:data:`~repro.sim.cache.CODE_VERSION` bump and regenerated goldens via
``scripts/make_golden_samples.py``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.server.wire import request_from_wire
from repro.sim import ks_statistic, ks_two_sample_threshold, simulate
from repro.sim.cache import CODE_VERSION

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "golden"

GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*_moves.json"))


def _load(path: pathlib.Path) -> dict:
    return json.loads(path.read_text())


#: Every family the batched kernels cover must have a recording — the
#: ROADMAP "more golden families" item, closed with the kernel
#: extraction so no refactor of the shared kernels can drift a family
#: silently.
ALL_FAMILIES = {
    "algorithm1",
    "nonuniform",
    "uniform",
    "doubly_uniform",
    "random_walk",
    "feinerman",
}


def test_golden_directory_populated():
    """All six batched-covered families are recorded."""
    assert len(GOLDEN_FILES) >= 6
    families = {_load(path)["family"] for path in GOLDEN_FILES}
    assert ALL_FAMILIES <= families


@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
def test_golden_metadata(path):
    """Golden files carry the provenance needed to regenerate them."""
    payload = _load(path)
    assert payload["metric"] == "moves_or_budget"
    assert payload["generator_backend"] == "closed_form"
    assert payload["code_version"] == CODE_VERSION, (
        "CODE_VERSION changed — regenerate the golden samples with "
        "scripts/make_golden_samples.py if the sampling semantics moved"
    )
    request = request_from_wire(payload["request"])
    assert request.n_trials == len(payload["samples"])


@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
def test_batched_backend_matches_golden_distribution(path):
    """``batched`` output stays KS-close to the recorded distribution.

    This replaces re-running the per-trial engine: the recorded sample
    *is* the reference.  Threshold at alpha = 0.01 — deterministic
    seeds mean a failure is a real distribution shift, not noise.
    """
    payload = _load(path)
    request = request_from_wire(payload["request"])
    golden = payload["samples"]

    result = simulate(request, backend="batched", cache=False)
    measured = [float(outcome.moves_or_budget) for outcome in result.outcomes]

    statistic = ks_statistic(golden, measured)
    threshold = ks_two_sample_threshold(len(golden), len(measured), alpha=0.01)
    assert statistic <= threshold, (
        f"{payload['family']}: batched vs golden KS {statistic:.4f} > "
        f"{threshold:.4f} — the sampling distribution moved; if "
        f"intentional, bump CODE_VERSION and regenerate tests/golden/"
    )
