"""Parity suite for the device-portable kernel core.

Every family kernel runs under the NumPy namespace and — when torch is
importable — under the torch-CPU namespace, asserting:

* identical result shapes and int64 dtypes after the ``to_numpy``
  boundary cast (dtypes-up-to-cast: torch tensors come back as int64
  ndarrays);
* request-level determinism per namespace (same seed, same arrays);
* KS-equivalent outcome distributions across namespaces — the two
  bindings draw from different streams, so equality is distributional,
  at the same fixed-seed determinism the golden gates use.

The suite is the CI "kernel parity" leg's payload: a torch-equipped
matrix job runs it to prove the shim's torch binding tracks NumPy
semantics, and it degrades to NumPy-only everywhere else.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import AlgorithmSpec, SimulationRequest, ks_statistic, \
    ks_two_sample_threshold
from repro.sim.kernels import (
    numpy_namespace,
    run_family,
    sample_sorties,
    sortie_hits,
    torch_namespace,
)
from repro.sim.kernels.core import SENTINEL

N_TRIALS = 200
MOVE_BUDGET = 300_000
SEED = 20140507


def _namespaces():
    spaces = [pytest.param(numpy_namespace(), id="numpy")]
    torch_ns = torch_namespace("cpu")
    if torch_ns is not None:
        spaces.append(pytest.param(torch_ns, id="torch-cpu"))
    return spaces


NAMESPACES = _namespaces()

FAMILY_SPECS = {
    "algorithm1": AlgorithmSpec.algorithm1(8),
    "nonuniform": AlgorithmSpec.nonuniform(8, 2),
    "uniform": AlgorithmSpec.uniform(1),
    "doubly-uniform": AlgorithmSpec.doubly_uniform(1),
    "random-walk": AlgorithmSpec.random_walk(),
    "feinerman": AlgorithmSpec.feinerman(),
}


def _request(family: str, n_trials: int = N_TRIALS) -> SimulationRequest:
    return SimulationRequest(
        algorithm=FAMILY_SPECS[family],
        n_agents=4,
        target=(6, 5),
        move_budget=MOVE_BUDGET,
        n_trials=n_trials,
        seed=SEED,
        distance_bound=8,
    )


def _run(xp, family: str, n_trials: int = N_TRIALS):
    request = _request(family, n_trials)
    rng = xp.rng(request.trial_seed(0))
    return tuple(
        xp.to_numpy(array)
        for array in run_family(xp, rng, request, n_trials)
    )


@pytest.mark.parametrize("xp", NAMESPACES)
@pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
class TestKernelShapesAndDtypes:
    def test_shapes_dtypes_and_invariants(self, xp, family):
        """(n_trials,) int64 arrays with coherent per-trial contents."""
        best, finder, iters, rounds = _run(xp, family, n_trials=64)
        for array in (best, finder, iters, rounds):
            assert array.shape == (64,)
            assert array.dtype == np.int64
        found = best != SENTINEL
        # This workload finds the target in at least some colonies.
        assert found.any()
        assert ((finder[found] >= 0) & (finder[found] < 4)).all()
        assert (finder[~found] == -1).all()
        assert (best[found] <= MOVE_BUDGET).all()
        assert (iters >= rounds).all()
        assert (rounds[found] >= 1).all()

    def test_deterministic_per_namespace(self, xp, family):
        """Same request, same namespace => identical arrays."""
        first = _run(xp, family, n_trials=32)
        second = _run(xp, family, n_trials=32)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


@pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
def test_torch_distribution_matches_numpy(family):
    """Cross-namespace KS gate: torch outcomes track the NumPy ones.

    Deterministic seeds on both sides — the statistic is a constant,
    so a failure is a semantic divergence in the torch binding (a
    wrong geometric inversion, a scatter that lost duplicates), not
    noise.
    """
    pytest.importorskip("torch")
    torch_ns = torch_namespace("cpu")
    assert torch_ns is not None

    def censored(best):
        return np.minimum(best, MOVE_BUDGET).astype(np.float64)

    numpy_best = _run(numpy_namespace(), family)[0]
    torch_best = _run(torch_ns, family)[0]
    statistic = ks_statistic(censored(numpy_best), censored(torch_best))
    threshold = ks_two_sample_threshold(N_TRIALS, N_TRIALS, alpha=0.01)
    assert statistic <= threshold, (
        f"{family}: torch vs numpy KS {statistic:.4f} > {threshold:.4f}"
    )


BLOCKED_FAMILIES = ["doubly-uniform", "random-walk", "uniform"]


def _edge_run(xp, family: str, *, n_agents: int, target, move_budget: int,
              n_trials: int):
    request = SimulationRequest(
        algorithm=FAMILY_SPECS[family],
        n_agents=n_agents,
        target=target,
        move_budget=move_budget,
        n_trials=n_trials,
        seed=SEED,
        distance_bound=8,
    )
    rng = xp.rng(request.trial_seed(0))
    return tuple(
        xp.to_numpy(array)
        for array in run_family(xp, rng, request, n_trials)
    )


@pytest.mark.parametrize("xp", NAMESPACES)
@pytest.mark.parametrize("family", BLOCKED_FAMILIES)
class TestBlockedRoundBoundaries:
    """Boundary hazards of the blocked-round kernels.

    The blocked kernels draw ``(pairs, block)`` rounds at a time; the
    three hazards are a pool far smaller than one block, the move
    budget expiring inside a block, and a sibling's hit pruning the
    pool in the same block as a cheaper hit.  The assertions lean on
    two exact facts: a sortie hit on target ``(x, y)`` costs exactly
    ``|x| + |y|`` moves within its round, and a walk hit needs a step
    count of the same parity as ``|x| + |y|``.
    """

    def test_pool_smaller_than_block(self, xp, family):
        # Two pairs total: the scratch-budget block is orders of
        # magnitude longer than anything this pool can use, so the
        # whole run lives in the degenerate pool < block regime.
        results = _edge_run(
            xp, family, n_agents=2, target=(3, 2), move_budget=50_000,
            n_trials=1,
        )
        best, finder, iters, rounds = results
        for array in results:
            assert array.shape == (1,)
            assert array.dtype == np.int64
        found = best != SENTINEL
        if found[0]:
            assert 5 <= best[0] <= 50_000
            assert 0 <= finder[0] < 2
        else:
            assert finder[0] == -1
        assert iters[0] >= rounds[0]
        again = _edge_run(
            xp, family, n_agents=2, target=(3, 2), move_budget=50_000,
            n_trials=1,
        )
        for a, b in zip(results, again):
            assert np.array_equal(a, b)

    def test_budget_expires_mid_block(self, xp, family):
        # 777 moves is far less than one block's worth of rounds for
        # every family, so the budget boundary lands inside a block:
        # the sparse exceed scan (phase kernels) and the truncated
        # final block with a partial last word (walk) must censor at
        # the budget, never overshoot it.
        best, finder, iters, rounds = _edge_run(
            xp, family, n_agents=4, target=(6, 5), move_budget=777,
            n_trials=128,
        )
        found = best != SENTINEL
        assert found.any()
        assert (best[found] <= 777).all()
        assert (best[found] >= 11).all()
        if family == "random-walk":
            assert (best[found] % 2 == 1).all()
        assert (finder[~found] == -1).all()
        assert (iters >= rounds).all()

    def test_one_move_budget_hits_in_first_round(self, xp, family):
        # A budget of one move shrinks the walk's first block to a
        # single partial word and makes only round-one sortie hits
        # eligible; any reported find must cost exactly one move.
        best, finder, _, _ = _edge_run(
            xp, family, n_agents=8, target=(1, 0), move_budget=1,
            n_trials=256,
        )
        found = best != SENTINEL
        assert found.any()
        assert (best[found] == 1).all()
        assert (finder[~found] == -1).all()

    def test_sibling_hit_prunes_within_block(self, xp, family):
        # A point-blank target with a generous budget makes many
        # agents of one colony hit inside the same block, racing the
        # best-prune.  The winning total can never dip below the
        # |x| + |y| floor — a cheaper value would mean the prune
        # promoted a partial leg.
        best, finder, _, _ = _edge_run(
            xp, family, n_agents=8, target=(1, 1), move_budget=10_000,
            n_trials=64,
        )
        found = best != SENTINEL
        assert found.all()
        assert (best >= 2).all()
        if family == "random-walk":
            assert (best % 2 == 0).all()
        assert ((finder >= 0) & (finder < 8)).all()
        again = _edge_run(
            xp, family, n_agents=8, target=(1, 1), move_budget=10_000,
            n_trials=64,
        )[0]
        assert np.array_equal(best, again)


@pytest.mark.parametrize("xp", NAMESPACES)
class TestSortieHelpers:
    def test_sample_sorties_shapes_and_ranges(self, xp):
        rng = xp.rng(np.random.SeedSequence(7))
        sv, lv, sh, lh = sample_sorties(xp, rng, 0.25, 1000)
        for array in (sv, lv, sh, lh):
            assert xp.to_numpy(array).shape == (1000,)
        signs = np.unique(np.concatenate([xp.to_numpy(sv), xp.to_numpy(sh)]))
        assert set(signs) <= {-1, 1}
        lengths = np.concatenate([xp.to_numpy(lv), xp.to_numpy(lh)])
        assert (lengths >= 0).all()
        # Geometric(0.25) - 1 has mean 3; 2000 draws keep this tight.
        assert 2.5 <= lengths.mean() <= 3.5

    def test_sortie_hits_closed_form(self, xp):
        """Hand-checked hit cases survive the namespace translation."""
        sv = xp.asarray([1, 1, -1, 1], dtype=xp.int64)
        lv = xp.asarray([5, 3, 2, 0], dtype=xp.int64)
        sh = xp.asarray([1, 1, 1, -1], dtype=xp.int64)
        lh = xp.asarray([0, 4, 9, 2], dtype=xp.int64)
        hit, moves = sortie_hits(xp, (2, 3), sv, lv, sh, lh)
        hit = xp.to_numpy(hit)
        moves = xp.to_numpy(moves)
        # Pair 1: vertical leg ends exactly at y=3, horizontal reaches
        # x=2 after 4 >= 2 moves -> hit after lv + |x| = 5 moves.
        assert list(hit) == [False, True, False, False]
        assert moves[1] == 5

    def test_origin_target_short_circuits(self, xp):
        request = SimulationRequest(
            algorithm=AlgorithmSpec.algorithm1(8), n_agents=2,
            target=(0, 0), move_budget=1000, n_trials=5, seed=1,
        )
        rng = xp.rng(request.trial_seed(0))
        best, finder, iters, rounds = (
            xp.to_numpy(a) for a in run_family(xp, rng, request, 5)
        )
        assert (best == 0).all()
        assert (iters == 0).all()


def test_geometric_distribution_parity():
    """The torch inverse-CDF geometric matches NumPy's sampler (KS)."""
    torch = pytest.importorskip("torch")
    del torch
    torch_ns = torch_namespace("cpu")
    numpy_draws = numpy_namespace().rng(np.random.SeedSequence(3)).geometric(
        0.125, size=4000
    )
    torch_draws = torch_ns.to_numpy(
        torch_ns.rng(np.random.SeedSequence(3)).geometric(0.125, size=4000)
    )
    assert numpy_draws.min() >= 1 and torch_draws.min() >= 1
    statistic = ks_statistic(
        numpy_draws.astype(float), torch_draws.astype(float)
    )
    assert statistic <= ks_two_sample_threshold(4000, 4000, alpha=0.01)
