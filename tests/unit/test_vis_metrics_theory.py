"""Unit tests for repro.vis, repro.sim.metrics, repro.core.theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import theory
from repro.errors import InvalidParameterError
from repro.sim.metrics import AgentOutcome, SearchOutcome, speedup
from repro.vis.asciiplot import heatmap, line_chart, scatter_chart


class TestMetrics:
    def test_outcome_consistency_enforced(self):
        with pytest.raises(InvalidParameterError):
            SearchOutcome(
                found=True, m_moves=None, m_steps=None, finder=0,
                n_agents=1, move_budget=10,
            )
        with pytest.raises(InvalidParameterError):
            SearchOutcome(
                found=False, m_moves=5, m_steps=None, finder=None,
                n_agents=1, move_budget=10,
            )

    def test_moves_or_budget(self):
        found = SearchOutcome(
            found=True, m_moves=7, m_steps=9, finder=0, n_agents=2, move_budget=100,
        )
        missed = SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=2, move_budget=100,
        )
        assert found.moves_or_budget == 7
        assert missed.moves_or_budget == 100

    def test_moves_or_budget_requires_budget(self):
        outcome = SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=1, move_budget=None,
        )
        with pytest.raises(InvalidParameterError):
            _ = outcome.moves_or_budget

    def test_agent_outcome_validation(self):
        with pytest.raises(InvalidParameterError):
            AgentOutcome(
                agent_id=0, found=True, moves_at_find=None, steps_at_find=None,
                total_moves=5, total_steps=5, final_position=(0, 0),
            )

    def test_speedup(self):
        assert speedup(100.0, 25.0) == 4.0
        with pytest.raises(InvalidParameterError):
            speedup(0.0, 5.0)


class TestTheoryFormulas:
    def test_iteration_moves(self):
        assert theory.expected_iteration_moves(0.5) == 2.0
        assert theory.iteration_moves_upper_bound(16) == 32.0
        assert theory.conditional_iteration_moves_upper_bound(16) == 64.0
        assert theory.expected_iteration_moves(1.0 / 16) < 32.0

    def test_hit_probability_cases(self):
        p = 0.25
        assert theory.hit_probability_exact(p, (0, 0)) == 1.0
        assert theory.hit_probability_exact(p, (0, 2)) == pytest.approx(
            0.5 * 0.75**2
        )
        assert theory.hit_probability_exact(p, (3, 0)) == pytest.approx(
            0.5 * p * 0.75**3
        )
        assert theory.hit_probability_exact(p, (2, 1)) == pytest.approx(
            0.25 * p * 0.75**3
        )

    def test_miss_probability(self):
        p_hit = theory.hit_probability_exact(0.125, (1, 1))
        assert theory.miss_probability_exact(0.125, (1, 1), 3) == pytest.approx(
            (1 - p_hit) ** 3
        )
        q = theory.miss_probability_upper_bound(16, 64)
        assert q == pytest.approx((1 - 1 / (64 * 16)) ** 64)

    def test_expected_moves_bound_shape(self):
        # The 4D/(1-q) envelope is O(D^2/n + D): ratio stays bounded.
        for d in (16, 64, 256):
            for n in (1, 4, 64):
                envelope = theory.expected_moves_upper_bound(d, n)
                shape = theory.expected_moves_shape(d, n)
                assert envelope / shape < 400

    def test_optimal_lower_bound(self):
        assert theory.optimal_lower_bound(16, 1) == 64.0
        assert theory.optimal_lower_bound(16, 1000) == 16.0

    def test_speedup_upper_bound(self):
        assert theory.speedup_upper_bound(64, 8) == 8.0
        assert theory.speedup_upper_bound(8, 100) == 8.0

    def test_uniform_shapes(self):
        assert theory.uniform_phase_moves_upper_bound(3, 1, 1, 2) == pytest.approx(
            4 * 2.0**5 * 2.0**3
        )
        base = theory.uniform_expected_moves_shape(64, 4, 1)
        assert theory.uniform_expected_moves_shape(64, 4, 3) > base

    def test_chi_predictions(self):
        assert theory.nonuniform_chi_prediction(1024, 1) == pytest.approx(
            np.log2(10) + 3
        )
        assert theory.uniform_chi_prediction(2**16, 1) == pytest.approx(12.0)

    def test_find_probability_per_phase(self):
        assert theory.uniform_find_probability_per_phase(1) == pytest.approx(
            1 - 2.0**-3
        )

    def test_probability_validation(self):
        with pytest.raises(InvalidParameterError):
            theory.expected_iteration_moves(0.0)
        with pytest.raises(InvalidParameterError):
            theory.hit_probability_exact(1.5, (0, 0))


class TestAsciiPlots:
    def test_line_chart_renders(self):
        chart = line_chart(
            [1, 2, 4, 8],
            {"measured": [1, 4, 16, 64], "bound": [2, 8, 32, 128]},
            log_x=True,
            log_y=True,
            title="scaling",
        )
        assert "scaling" in chart
        assert "legend" in chart
        assert "o = measured" in chart

    def test_line_chart_validation(self):
        with pytest.raises(InvalidParameterError):
            line_chart([1, 2], {})
        with pytest.raises(InvalidParameterError):
            line_chart([1, 2], {"a": [1.0]})
        with pytest.raises(InvalidParameterError):
            line_chart([0, 2], {"a": [1.0, 2.0]}, log_x=True)

    def test_scatter_renders(self):
        chart = scatter_chart([(0, 0), (1, 1), (2, 4)], labels=["a", "b", "c"])
        assert "a" in chart and "c" in chart

    def test_scatter_validation(self):
        with pytest.raises(InvalidParameterError):
            scatter_chart([])

    def test_heatmap_renders(self):
        grid = np.zeros((9, 9))
        grid[4, 4] = 1.0
        art = heatmap(grid, title="coverage")
        assert "coverage" in art
        assert "@" in art  # densest glyph at the peak

    def test_heatmap_shrinks_large_grids(self):
        grid = np.random.default_rng(0).random((300, 300))
        art = heatmap(grid, max_side=32)
        body_lines = [l for l in art.splitlines() if not l.startswith("range")]
        assert all(len(line) <= 40 for line in body_lines)

    def test_heatmap_validation(self):
        with pytest.raises(InvalidParameterError):
            heatmap(np.zeros((2, 2, 2)))
        with pytest.raises(InvalidParameterError):
            heatmap(np.zeros((0, 3)))

    def test_heatmap_orientation_north_up(self):
        # A grid with mass only at high y must render it on the first line.
        grid = np.zeros((5, 5))
        grid[2, 4] = 1.0  # x=2, y=4 (top)
        lines = heatmap(grid).splitlines()
        assert "@" in lines[0]
