"""Unit tests for repro.core.automaton and repro.core.actions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import ACTION_VECTORS, Action
from repro.core.automaton import Automaton, AutomatonAlgorithm
from repro.errors import InvalidParameterError


def two_state_machine() -> Automaton:
    """origin <-> up with asymmetric probabilities."""
    matrix = np.array([[0.25, 0.75], [0.5, 0.5]])
    return Automaton(matrix, [Action.ORIGIN, Action.UP], start=0, name="toy")


class TestActions:
    def test_move_actions(self):
        assert Action.UP.is_move
        assert Action.LEFT.is_move
        assert not Action.ORIGIN.is_move
        assert not Action.NONE.is_move

    def test_direction_mapping(self):
        assert Action.UP.direction.vector == (0, 1)
        assert Action.LEFT.direction.vector == (-1, 0)

    def test_non_move_has_no_direction(self):
        with pytest.raises(ValueError):
            _ = Action.NONE.direction

    def test_action_vectors_consistent(self):
        for action in Action:
            if action.is_move:
                assert ACTION_VECTORS[action] == action.direction.vector
            else:
                assert ACTION_VECTORS[action] == (0, 0)


class TestAutomatonValidation:
    def test_rejects_non_square(self):
        with pytest.raises(InvalidParameterError):
            Automaton(np.ones((2, 3)) / 3, [Action.ORIGIN, Action.UP])

    def test_rejects_non_stochastic_rows(self):
        matrix = np.array([[0.5, 0.4], [0.5, 0.5]])
        with pytest.raises(InvalidParameterError):
            Automaton(matrix, [Action.ORIGIN, Action.UP])

    def test_rejects_negative_probability(self):
        matrix = np.array([[1.2, -0.2], [0.5, 0.5]])
        with pytest.raises(InvalidParameterError):
            Automaton(matrix, [Action.ORIGIN, Action.UP])

    def test_rejects_wrong_label_count(self):
        with pytest.raises(InvalidParameterError):
            Automaton(np.eye(2), [Action.ORIGIN])

    def test_rejects_start_not_labeled_origin(self):
        with pytest.raises(InvalidParameterError):
            Automaton(np.eye(2), [Action.UP, Action.ORIGIN], start=0)

    def test_rejects_start_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            Automaton(np.eye(2), [Action.ORIGIN, Action.UP], start=5)


class TestAutomatonBehaviour:
    def test_basic_properties(self):
        machine = two_state_machine()
        assert machine.n_states == 2
        assert machine.start == 0
        assert machine.label(1) is Action.UP
        assert machine.min_positive_probability() == 0.25
        assert machine.memory_bits() == 1

    def test_selection_complexity(self):
        sc = two_state_machine().selection_complexity()
        assert sc.bits == 1
        assert sc.ell == 2.0  # min prob 1/4 = 2^-2
        assert sc.chi == 2.0

    def test_matrix_is_copied(self):
        machine = two_state_machine()
        matrix = machine.matrix
        matrix[0, 0] = 99.0
        assert machine.matrix[0, 0] == 0.25

    def test_step_distribution(self, rng):
        machine = two_state_machine()
        successors = [machine.step(rng, 0) for _ in range(20_000)]
        assert np.mean(successors) == pytest.approx(0.75, abs=0.02)

    def test_step_many_matches_step_distribution(self, rng):
        machine = two_state_machine()
        states = np.zeros(20_000, dtype=np.int64)
        successors = machine.step_many(rng, states)
        assert successors.mean() == pytest.approx(0.75, abs=0.02)
        assert set(np.unique(successors)) <= {0, 1}

    def test_walk_length(self, rng):
        machine = two_state_machine()
        path = machine.walk(rng, 17)
        assert path.shape == (17,)
        assert set(np.unique(path)) <= {0, 1}

    def test_move_vectors_and_origin_mask(self):
        machine = two_state_machine()
        vectors = machine.move_vectors()
        assert vectors.tolist() == [[0, 0], [0, 1]]
        assert machine.origin_state_mask().tolist() == [True, False]

    def test_to_markov_chain_round_trip(self):
        machine = two_state_machine()
        chain = machine.to_markov_chain()
        assert chain.n_states == 2
        assert chain.start == 0
        np.testing.assert_allclose(chain.matrix, machine.matrix)
        assert chain.state_names == ["s0:origin", "s1:up"]

    def test_deterministic_machine_min_probability(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        machine = Automaton(matrix, [Action.ORIGIN, Action.UP])
        assert machine.min_positive_probability() == 1.0
        assert machine.selection_complexity().ell == 1.0


class TestAutomatonAlgorithm:
    def test_process_yields_labels(self, rng):
        algorithm = AutomatonAlgorithm(two_state_machine())
        process = algorithm.process(rng)
        actions = [next(process) for _ in range(50)]
        assert set(actions) <= {Action.ORIGIN, Action.UP}

    def test_name_and_accessors(self):
        machine = two_state_machine()
        algorithm = AutomatonAlgorithm(machine)
        assert algorithm.name == "toy"
        assert algorithm.automaton() is machine
        assert algorithm.selection_complexity().chi == 2.0
