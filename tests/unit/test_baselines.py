"""Unit tests for the baseline algorithms (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.feinerman import (
    FeinermanSearch,
    fast_feinerman,
    stage_quota,
    stage_radius,
)
from repro.baselines.levy import LevyWalk, sample_flight_length
from repro.baselines.random_walk import RandomWalkSearch
from repro.baselines.spiral import (
    SpiralSearch,
    spiral_index,
    spiral_moves,
    spiral_point,
    spiral_points,
)
from repro.core.actions import Action
from repro.errors import InvalidParameterError
from repro.grid.geometry import chebyshev_norm


class TestSpiralIndexing:
    def test_origin(self):
        assert spiral_index((0, 0)) == 0
        assert spiral_point(0) == (0, 0)

    def test_first_ring_sequence(self):
        expected = [
            (0, 0), (1, 0), (1, 1), (0, 1), (-1, 1),
            (-1, 0), (-1, -1), (0, -1), (1, -1), (2, -1),
        ]
        for index, point in enumerate(expected):
            assert spiral_point(index) == point
            assert spiral_index(point) == index

    def test_bijection_on_prefix(self):
        for index in range(3000):
            assert spiral_index(spiral_point(index)) == index

    def test_ring_boundaries(self):
        # Ring r spans indices (2r-1)^2 .. (2r+1)^2 - 1.
        for r in (1, 2, 5, 9):
            first = spiral_point((2 * r - 1) ** 2)
            last = spiral_point((2 * r + 1) ** 2 - 1)
            assert chebyshev_norm(first) == r
            assert chebyshev_norm(last) == r

    def test_path_is_connected(self):
        previous = spiral_point(0)
        for index in range(1, 500):
            current = spiral_point(index)
            step = abs(current[0] - previous[0]) + abs(current[1] - previous[1])
            assert step == 1
            previous = current

    def test_moves_follow_points(self):
        moves = spiral_moves()
        position = (0, 0)
        for index in range(1, 200):
            action = next(moves)
            dx, dy = action.direction.vector
            position = (position[0] + dx, position[1] + dy)
            assert position == spiral_point(index)

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            spiral_point(-1)

    def test_spiral_points_iterator(self):
        iterator = spiral_points(start=5)
        assert next(iterator) == spiral_point(5)
        assert next(iterator) == spiral_point(6)


class TestSpiralSearch:
    def test_moves_to_find_is_spiral_index(self):
        assert SpiralSearch.moves_to_find((2, -1)) == spiral_index((2, -1))

    def test_engine_run_matches_closed_form(self):
        from repro.grid.world import GridWorld
        from repro.sim.engine import EngineConfig, SearchEngine

        target = (-2, 1)
        engine = SearchEngine(EngineConfig(move_budget=200))
        world = GridWorld(target=target, distance_bound=4)
        outcome = engine.run(SpiralSearch(), 1, world, rng=1)
        assert outcome.found
        assert outcome.m_moves == spiral_index(target)

    def test_no_selection_complexity(self):
        assert SpiralSearch().selection_complexity() is None


class TestRandomWalkBaseline:
    def test_process_only_moves(self, rng):
        process = RandomWalkSearch().process(rng)
        actions = [next(process) for _ in range(200)]
        assert all(action.is_move for action in actions)

    def test_all_directions_used(self, rng):
        process = RandomWalkSearch().process(rng)
        actions = {next(process) for _ in range(500)}
        assert actions == {Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT}

    def test_chi_is_four(self):
        assert RandomWalkSearch().selection_complexity().chi == pytest.approx(4.0)


class TestFeinerman:
    def test_stage_parameters(self):
        assert stage_radius(3) == 8
        assert stage_quota(3, n_agents=1, c=1.0) == 64 + 8
        assert stage_quota(3, n_agents=64, c=1.0) == 9  # ceil(1 + 8)

    def test_stage_validation(self):
        with pytest.raises(InvalidParameterError):
            stage_radius(0)
        with pytest.raises(InvalidParameterError):
            stage_quota(1, 0)

    def test_process_returns_to_origin_each_stage(self, rng):
        process = FeinermanSearch(n_agents=2).process(rng)
        actions = [next(process) for _ in range(3000)]
        assert Action.ORIGIN in actions

    def test_engine_finds_near_target(self, rng):
        from repro.grid.world import GridWorld
        from repro.sim.engine import EngineConfig, SearchEngine

        engine = SearchEngine(EngineConfig(move_budget=200_000))
        world = GridWorld(target=(3, 2), distance_bound=8)
        outcome = engine.run(FeinermanSearch(n_agents=2), 2, world, rng=5)
        assert outcome.found

    def test_fast_feinerman_finds(self, rng):
        outcome = fast_feinerman(4, (20, -13), rng, 10**7)
        assert outcome.found
        assert outcome.m_moves >= 20 + 13

    def test_fast_feinerman_budget(self, rng):
        outcome = fast_feinerman(1, (500, 500), rng, move_budget=100)
        assert not outcome.found

    def test_fast_feinerman_origin_target(self, rng):
        assert fast_feinerman(1, (0, 0), rng, 10).m_moves == 0

    def test_chi_accounting_is_theta_log_d(self):
        algorithm = FeinermanSearch(n_agents=4)
        chi_small = algorithm.selection_complexity_for_distance(2**6).chi
        chi_large = algorithm.selection_complexity_for_distance(2**12).chi
        # chi roughly proportional to log D: doubling log D roughly
        # doubles chi (coordinates dominate).
        assert chi_large > 1.5 * chi_small
        assert chi_small > 10  # far above log log D ~ 2.6

    def test_fast_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            fast_feinerman(0, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            fast_feinerman(1, (1, 1), rng, 0)


class TestLevy:
    def test_flight_length_range(self, rng):
        for _ in range(200):
            length = sample_flight_length(rng, alpha=2.0, max_length=50)
            assert 1 <= length <= 50

    def test_flight_length_heavy_tail(self, rng):
        lengths = [
            sample_flight_length(rng, alpha=2.0, max_length=10**6)
            for _ in range(20_000
            )
        ]
        # P[L >= 10] = 1/10 for alpha = 2.
        tail = np.mean([l >= 10 for l in lengths])
        assert tail == pytest.approx(0.1, abs=0.02)

    def test_process_yields_straight_flights(self, rng):
        process = LevyWalk(alpha=2.0).process(rng)
        actions = [next(process) for _ in range(500)]
        assert all(action.is_move for action in actions)

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            LevyWalk(alpha=1.0)
        with pytest.raises(InvalidParameterError):
            sample_flight_length(rng, alpha=0.5, max_length=10)
        with pytest.raises(InvalidParameterError):
            sample_flight_length(rng, alpha=2.0, max_length=0)
