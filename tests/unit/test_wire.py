"""The serving wire schema: versioning, strictness, exact round trips."""

from __future__ import annotations

import json

import pytest

from repro.errors import InvalidParameterError
from repro.server import wire
from repro.server.wire import WIRE_VERSION, WireError
from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.jobs import JobProgress, JobState, ShardResult
from repro.sim.metrics import AgentOutcome, FastRunStats, SearchOutcome


def _request(**overrides) -> SimulationRequest:
    fields = dict(
        algorithm=AlgorithmSpec.nonuniform(8, 2),
        n_agents=3,
        target=(5, -7),
        move_budget=123_456,
        step_budget=None,
        n_trials=4,
        seed=314159,
        seed_keys=(2, 7),
        distance_bound=9,
    )
    fields.update(overrides)
    return SimulationRequest(**fields)


class TestRequestRoundTrip:
    def test_exact_equality_including_seeds(self):
        request = _request()
        decoded = wire.request_from_wire(wire.request_to_wire(request))
        assert decoded == request
        assert decoded.seed == request.seed
        assert decoded.seed_keys == request.seed_keys

    def test_survives_json_serialization(self):
        request = _request(step_budget=77)
        over_the_socket = json.loads(json.dumps(wire.request_to_wire(request)))
        assert wire.request_from_wire(over_the_socket) == request

    @pytest.mark.parametrize(
        "spec",
        [
            AlgorithmSpec.algorithm1(16),
            AlgorithmSpec.uniform(2),
            AlgorithmSpec.doubly_uniform(1, K=5),
            AlgorithmSpec.random_walk(),
            AlgorithmSpec.feinerman(),
            AlgorithmSpec.spiral(),
            AlgorithmSpec.levy(),
        ],
        ids=lambda spec: spec.name,
    )
    def test_every_algorithm_family_round_trips(self, spec):
        request = _request(algorithm=spec, distance_bound=16)
        assert wire.request_from_wire(wire.request_to_wire(request)) == request

    def test_calibrated_K_is_preserved_verbatim(self):
        spec = AlgorithmSpec.uniform(1)  # K resolved by calibration
        decoded = wire.algorithm_from_wire(wire.algorithm_to_wire(spec))
        assert decoded.K == spec.K
        assert decoded == spec


class TestStrictDecoding:
    def test_wrong_wire_version_rejected(self):
        payload = wire.request_to_wire(_request())
        payload["wire"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version"):
            wire.request_from_wire(payload)

    def test_missing_version_rejected(self):
        payload = wire.request_to_wire(_request())
        del payload["wire"]
        with pytest.raises(WireError, match="wire version"):
            wire.request_from_wire(payload)

    def test_missing_required_field_rejected(self):
        payload = wire.request_to_wire(_request())
        del payload["move_budget"]
        with pytest.raises(WireError, match="move_budget"):
            wire.request_from_wire(payload)

    def test_non_integer_field_rejected(self):
        payload = wire.request_to_wire(_request())
        payload["n_agents"] = "four"
        with pytest.raises(WireError, match="n_agents"):
            wire.request_from_wire(payload)

    def test_bad_target_rejected(self):
        payload = wire.request_to_wire(_request())
        payload["target"] = [1, 2, 3]
        with pytest.raises(WireError, match="target"):
            wire.request_from_wire(payload)

    def test_domain_validation_still_runs(self):
        payload = wire.request_to_wire(_request())
        payload["n_agents"] = 0
        with pytest.raises(InvalidParameterError):
            wire.request_from_wire(payload)

    def test_unknown_algorithm_rejected(self):
        payload = wire.request_to_wire(_request())
        payload["algorithm"]["name"] = "teleport"
        with pytest.raises(InvalidParameterError, match="teleport"):
            wire.request_from_wire(payload)


class TestOutcomeRoundTrip:
    def _outcome(self) -> SearchOutcome:
        return SearchOutcome(
            found=True,
            m_moves=123,
            m_steps=456,
            finder=1,
            n_agents=2,
            move_budget=10_000,
            per_agent=[
                AgentOutcome(
                    agent_id=0,
                    found=False,
                    moves_at_find=None,
                    steps_at_find=None,
                    total_moves=999,
                    total_steps=1500,
                    final_position=(3, -4),
                ),
                AgentOutcome(
                    agent_id=1,
                    found=True,
                    moves_at_find=123,
                    steps_at_find=456,
                    total_moves=123,
                    total_steps=456,
                    final_position=(5, 5),
                ),
            ],
            stats=FastRunStats(iterations_executed=7, rounds_executed=3),
        )

    def test_full_outcome_round_trips(self):
        outcome = self._outcome()
        decoded = wire.outcome_from_wire(
            json.loads(json.dumps(wire.outcome_to_wire(outcome)))
        )
        assert decoded == outcome
        assert decoded.per_agent == outcome.per_agent
        assert decoded.stats == outcome.stats

    def test_not_found_outcome_round_trips(self):
        outcome = SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=4, move_budget=100,
        )
        assert wire.outcome_from_wire(wire.outcome_to_wire(outcome)) == outcome

    def test_simulated_outcomes_round_trip(self):
        """Real backend output — numpy scalars and all — survives."""
        request = _request(algorithm=AlgorithmSpec.algorithm1(8), n_trials=3)
        result = simulate(request, backend="closed_form", cache=False)
        decoded = wire.result_from_wire(
            json.loads(json.dumps(wire.result_to_wire(result)))
        )
        assert decoded.outcomes == result.outcomes
        assert decoded.request == result.request
        assert decoded.backend == result.backend


class TestShardAndProgress:
    def test_shard_round_trips(self):
        outcome = SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=1, move_budget=10,
        )
        shard = ShardResult(
            shard_index=2,
            trial_start=8,
            trial_count=1,
            outcomes=(outcome,),
            from_cache=True,
        )
        decoded = wire.shard_from_wire(
            json.loads(json.dumps(wire.shard_to_wire(shard)))
        )
        assert decoded == shard
        assert decoded.trial_indices == shard.trial_indices

    def test_progress_encoding(self):
        progress = JobProgress(
            state=JobState.RUNNING,
            total_shards=4,
            done_shards=1,
            total_trials=100,
            done_trials=25,
            cached_shards=0,
        )
        payload = wire.progress_to_wire(progress)
        assert payload["state"] == "running"
        assert payload["fraction"] == pytest.approx(0.25)
        assert wire.state_from_wire(payload["state"]) is JobState.RUNNING

    def test_unknown_state_rejected(self):
        with pytest.raises(WireError, match="state"):
            wire.state_from_wire("exploded")
