"""Unit tests for Algorithms 3 and 4 (Lemmas 3.8 and 3.9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Action
from repro.core.square_search import (
    check_square_parameters,
    chi_of_search,
    expected_sortie_moves,
    search_memory_bits,
    search_process,
    square_side,
    visit_probability,
    visit_probability_lower_bound,
)
from repro.core.walk import (
    sample_walk_length,
    walk_length_pmf,
    walk_length_tail,
    walk_memory_bits,
    walk_process,
)
from repro.errors import InvalidParameterError
from repro.grid.geometry import Direction


class TestWalk:
    def test_walk_yields_single_direction(self, rng):
        actions = list(walk_process(rng, k=2, ell=1, direction=Direction.LEFT))
        assert all(action is Action.LEFT for action in actions)

    def test_walk_length_distribution_mean(self, rng):
        # p = 2^-2 = 1/4; mean length = 3.
        lengths = [
            sum(1 for _ in walk_process(rng, 2, 1, Direction.UP)) for _ in range(8000)
        ]
        assert np.mean(lengths) == pytest.approx(3.0, rel=0.06)

    def test_sample_walk_length_matches_process(self, rng_factory):
        direct_rng = rng_factory(1)
        process_rng = rng_factory(2)
        lengths_direct = [sample_walk_length(direct_rng, 3, 1) for _ in range(8000)]
        lengths_process = [
            sum(1 for _ in walk_process(process_rng, 3, 1, Direction.UP))
            for _ in range(8000)
        ]
        assert np.mean(lengths_direct) == pytest.approx(
            np.mean(lengths_process), rel=0.08
        )

    def test_emit_internal_produces_none_steps(self, rng):
        actions = list(
            walk_process(rng, 2, 1, Direction.RIGHT, emit_internal=True)
        )
        assert Action.NONE in actions
        moves = [a for a in actions if a.is_move]
        assert all(a is Action.RIGHT for a in moves)

    def test_pmf_lemma_bound(self):
        # Lemma 3.8: every length 0..2^{kl} has probability >= 2^{-(kl+2)}.
        k, ell = 3, 1
        floor = 2.0 ** -(k * ell + 2)
        for length in range(2 ** (k * ell) + 1):
            assert walk_length_pmf(k, ell, length) >= floor

    def test_tail_lemma_bound(self):
        # Lemma 3.8: P[len >= 2^{kl}] >= 1/4.
        for k, ell in [(1, 1), (2, 1), (3, 1), (2, 2)]:
            assert walk_length_tail(k, ell, 2 ** (k * ell)) >= 0.25

    def test_expected_length_below_bound(self, rng):
        # Lemma 3.8: E[len] < 2^{kl}.
        k, ell = 2, 2
        lengths = [sample_walk_length(rng, k, ell) for _ in range(20_000)]
        assert np.mean(lengths) < 2 ** (k * ell)

    def test_pmf_sums_to_one(self):
        total = sum(walk_length_pmf(2, 1, i) for i in range(4000))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_memory_bits(self):
        assert walk_memory_bits(1) == 0
        assert walk_memory_bits(5) == 3

    def test_pmf_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            walk_length_pmf(2, 1, -1)
        with pytest.raises(InvalidParameterError):
            walk_length_tail(2, 1, -1)


class TestSquareSearch:
    def test_sortie_shape(self, rng):
        for _ in range(40):
            actions = list(search_process(rng, 2, 1))
            vertical = [a for a in actions if a in (Action.UP, Action.DOWN)]
            horizontal = [a for a in actions if a in (Action.LEFT, Action.RIGHT)]
            assert len(vertical) + len(horizontal) == len(actions)
            assert len(set(vertical)) <= 1
            assert len(set(horizontal)) <= 1

    def test_visit_probability_origin_is_one(self):
        assert visit_probability(3, 1, (0, 0)) == 1.0

    def test_visit_probability_symmetry(self):
        for target in [(2, 3), (1, 0), (0, 5)]:
            x, y = target
            reference = visit_probability(3, 1, (x, y))
            for mirrored in [(-x, y), (x, -y), (-x, -y)]:
                assert visit_probability(3, 1, mirrored) == pytest.approx(reference)

    def test_visit_probability_matches_simulation(self, rng):
        k, ell = 2, 1
        targets = [(1, 2), (0, 3), (2, 0), (3, 3)]
        trials = 30_000
        counts = {t: 0 for t in targets}
        for _ in range(trials):
            position = (0, 0)
            visited = set([position])
            for action in search_process(rng, k, ell):
                dx, dy = action.direction.vector
                position = (position[0] + dx, position[1] + dy)
                visited.add(position)
            for t in targets:
                counts[t] += t in visited
        for t in targets:
            expected = visit_probability(k, ell, t)
            se = (expected * (1 - expected) / trials) ** 0.5
            assert counts[t] / trials == pytest.approx(expected, abs=5 * se + 1e-4)

    def test_lemma_bound_holds_over_square(self):
        # Lemma 3.9: visit probability >= 2^{-(kl+6)} over the square.
        k, ell = 2, 1
        side = square_side(k, ell)
        floor = visit_probability_lower_bound(k, ell)
        for x in range(-side, side + 1):
            for y in range(-side, side + 1):
                assert visit_probability(k, ell, (x, y)) >= floor

    def test_memory_bits_lemma(self):
        # Lemma 3.9: ceil(log k) + 2 bits.
        assert search_memory_bits(1) == 2
        assert search_memory_bits(4) == 4
        assert search_memory_bits(5) == 5

    def test_expected_sortie_moves(self):
        assert expected_sortie_moves(2, 1) == pytest.approx(2 * 3)

    def test_chi_of_search(self):
        assert chi_of_search(4, 1) == pytest.approx(4.0)  # (2+2) + log2(1)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            check_square_parameters(0, 1)
        with pytest.raises(InvalidParameterError):
            check_square_parameters(1, 0)
        with pytest.raises(InvalidParameterError):
            check_square_parameters(61, 1)
