"""Public-API surface tests: exports, docstrings, repr hygiene."""

from __future__ import annotations

import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_key_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_every_subpackage_has_module_docstring(self):
        import repro.baselines
        import repro.core
        import repro.experiments
        import repro.grid
        import repro.lowerbound
        import repro.markov
        import repro.robustness
        import repro.sim
        import repro.vis

        for module in (
            repro.baselines, repro.core, repro.experiments, repro.grid,
            repro.lowerbound, repro.markov, repro.robustness, repro.sim,
            repro.vis,
        ):
            assert module.__doc__ and len(module.__doc__) > 80


class TestAlgorithmContracts:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: repro.Algorithm1(8),
            lambda: repro.NonUniformSearch(8, 1),
            lambda: repro.UniformSearch(2, 1),
            lambda: repro.DoublyUniformSearch(1),
        ],
    )
    def test_processes_are_generators_of_actions(self, factory, rng):
        algorithm = factory()
        process = algorithm.process(rng)
        for _ in range(25):
            action = next(process)
            assert isinstance(action, repro.Action)

    def test_algorithm_names_are_informative(self):
        assert "Algorithm1" in repro.Algorithm1(8).name
        assert "NonUniform" in repro.NonUniformSearch(8, 1).name

    def test_search_algorithm_default_hooks(self, rng):
        class Minimal(repro.SearchAlgorithm):
            def process(self, generator):
                while True:
                    yield repro.Action.NONE

        minimal = Minimal()
        assert minimal.selection_complexity() is None
        assert minimal.automaton() is None
        assert minimal.name == "Minimal"
