"""Unit tests for the vectorized simulators (repro.sim.fast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import theory
from repro.errors import InvalidParameterError
from repro.sim.fast import (
    fast_algorithm1,
    fast_nonuniform,
    fast_random_walk,
    fast_uniform,
    lshape_first_find,
)


class TestLShapeFirstFind:
    def test_finds_near_target(self, rng):
        outcome = lshape_first_find(0.125, 4, (2, 1), rng, move_budget=100_000)
        assert outcome.found
        assert outcome.m_moves is not None and outcome.m_moves >= 3

    def test_target_at_origin(self, rng):
        outcome = lshape_first_find(0.5, 2, (0, 0), rng, 100)
        assert outcome.found and outcome.m_moves == 0

    def test_m_moves_at_least_manhattan_distance(self, rng):
        # The L-path to (x, y) costs at least |x| + |y| moves.
        for target in [(3, 2), (0, 5), (-4, 1)]:
            outcome = lshape_first_find(0.1, 8, target, rng, 1_000_000)
            assert outcome.found
            assert outcome.m_moves >= abs(target[0]) + abs(target[1])

    def test_tiny_budget_fails(self, rng):
        outcome = lshape_first_find(0.125, 1, (6, 6), rng, move_budget=5)
        assert not outcome.found
        assert outcome.m_moves is None

    def test_mean_matches_theory_single_agent(self, rng):
        """E[M_moves] for one agent ~ 4D/(1-q) envelope (Theorem 3.5)."""
        distance = 16
        target = (distance, distance)  # hardest corner
        samples = [
            fast_algorithm1(distance, 1, target, rng, 10**7).m_moves
            for _ in range(300)
        ]
        mean = float(np.mean(samples))
        bound = theory.expected_moves_upper_bound(distance, 1)
        assert mean <= bound  # the proof's explicit envelope holds

    def test_more_agents_never_slower(self, rng_factory):
        distance, target = 32, (20, -13)
        means = []
        for n_agents in (1, 8, 64):
            generator = rng_factory(17)
            samples = [
                fast_algorithm1(distance, n_agents, target, generator, 10**7).m_moves
                for _ in range(150)
            ]
            means.append(np.mean(samples))
        assert means[1] < means[0]
        assert means[2] < means[1]

    def test_parameter_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            lshape_first_find(0.0, 1, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            lshape_first_find(1.0, 1, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            lshape_first_find(0.5, 0, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            lshape_first_find(0.5, 1, (1, 1), rng, 0)


class TestFastWrappers:
    def test_fast_nonuniform_smaller_stop_probability(self, rng):
        outcome = fast_nonuniform(16, 1, 4, (5, 5), rng, 10**6)
        assert outcome.found

    def test_fast_algorithm1_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            fast_algorithm1(1, 1, (0, 0), rng, 10)

    def test_fast_uniform_finds_close_targets_quickly(self, rng):
        outcome = fast_uniform(4, 1, 2, (2, 2), rng, 10**6)
        assert outcome.found
        assert outcome.m_moves < 10**5

    def test_fast_uniform_respects_budget(self, rng):
        outcome = fast_uniform(1, 1, 2, (50, 50), rng, move_budget=20)
        assert not outcome.found

    def test_fast_uniform_max_phase_truncation(self, rng):
        # With max_phase=1 the square side is 2; a far target is unreachable.
        outcome = fast_uniform(2, 1, 2, (40, 40), rng, 10**6, max_phase=1)
        assert not outcome.found

    def test_fast_uniform_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            fast_uniform(0, 1, 2, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            fast_uniform(1, 0, 2, (1, 1), rng, 10)


class TestFastRandomWalk:
    def test_finds_adjacent_target(self, rng):
        outcome = fast_random_walk(8, (1, 0), rng, 10_000)
        assert outcome.found
        assert outcome.m_moves >= 1

    def test_budget_exhaustion(self, rng):
        outcome = fast_random_walk(1, (90, 90), rng, move_budget=50)
        assert not outcome.found

    def test_m_moves_parity(self, rng):
        """A walk reaching (x, y) needs moves with the parity of x+y."""
        for _ in range(20):
            outcome = fast_random_walk(2, (1, 2), rng, 100_000)
            if outcome.found:
                assert (outcome.m_moves - 3) % 2 == 0

    def test_origin_target(self, rng):
        assert fast_random_walk(1, (0, 0), rng, 10).m_moves == 0

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            fast_random_walk(0, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            fast_random_walk(1, (1, 1), rng, 0)

    def test_reproducible_with_same_seed(self, rng_factory):
        first = fast_random_walk(2, (2, 1), rng_factory(99), 5_000).m_moves
        second = fast_random_walk(2, (2, 1), rng_factory(99), 5_000).m_moves
        assert first == second

    def test_chunk_size_does_not_bias_results(self, rng_factory):
        """Different chunkings draw differently but agree in distribution."""
        means = []
        for chunk, seed in ((5, 1), (2048, 2)):
            generator = rng_factory(seed)
            samples = [
                fast_random_walk(2, (2, 1), generator, 100_000, chunk=chunk)
                .moves_or_budget
                for _ in range(200)
            ]
            means.append(np.mean(samples))
        assert means[0] == pytest.approx(means[1], rel=0.35)
