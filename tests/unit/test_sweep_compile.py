"""Sweep -> batched compilation: factory recognition, addressing, caching.

The load-bearing invariant: a compiled grid point's trial ``t`` draws
from ``derive_seed(seed, *seed_keys, point_index, t)`` — exactly the
address the per-trial job path uses — so compilation onto a per-trial
backend is bit-identical to the historical execution model, and the
batched backend changes only the stream pooling, not the addressing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim import AlgorithmSpec, SimulationRequest
from repro.sim.fast import fast_algorithm1
from repro.sim.rng import derive_seed
from repro.sim.runner import SimulationTrial, Sweep, censored_moves
from repro.sim.service import backend_run_count

GRID = [{"D": 8}, {"D": 12}]


def _factory(params):
    """Module-level request factory (picklable for the process pool)."""
    distance = int(params["D"])
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(distance),
        n_agents=2,
        target=(distance, distance),
        move_budget=100_000,
    )


def _per_trial(params, rng):
    """The same workload as a plain per-trial function."""
    distance = int(params["D"])
    return float(
        fast_algorithm1(
            distance, 2, (distance, distance), rng, 100_000
        ).moves_or_budget
    )


def _found_metric(outcome):
    """Module-level metric override (picklable)."""
    return 1.0 if outcome.found else 0.0


class TestCompilation:
    def test_compiled_sweep_is_recognized(self):
        sweep = Sweep(SimulationTrial(_factory), GRID, trials=3, seed=1)
        assert sweep.compiled
        assert not Sweep(_per_trial, GRID, trials=3, seed=1).compiled

    def test_one_job_per_point(self):
        jobs = Sweep(
            SimulationTrial(_factory), GRID, trials=7, seed=1, workers=4
        ).compile_jobs()
        assert len(jobs) == len(GRID)
        assert all(job.trial_count == 7 for job in jobs)

    def test_compile_requests_rebinds_addressing(self):
        sweep = Sweep(
            SimulationTrial(_factory), GRID, trials=5, seed=17, seed_keys=(3,)
        )
        requests = sweep.compile_requests()
        assert [r.n_trials for r in requests] == [5, 5]
        assert [r.seed for r in requests] == [17, 17]
        assert [r.seed_keys for r in requests] == [(3, 0), (3, 1)]

    def test_compile_requests_rejects_plain_sweeps(self):
        with pytest.raises(InvalidParameterError):
            Sweep(_per_trial, GRID, trials=3, seed=1).compile_requests()


class TestBitIdentity:
    def test_compiled_on_per_trial_backend_matches_plain_sweep(self):
        """Compilation must not change the derive_seed(seed, i, t) streams."""
        plain = Sweep(_per_trial, GRID, trials=6, seed=17).run()
        compiled = Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID, trials=6, seed=17,
        ).run()
        for row_p, row_c in zip(plain, compiled):
            assert row_p.params == row_c.params
            assert row_p.estimate == row_c.estimate

    def test_compiled_matches_manual_derive_seed_addressing(self):
        rows = Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID, trials=4, seed=23, seed_keys=(9,),
        ).run()
        for index, point in enumerate(GRID):
            distance = int(point["D"])
            manual = [
                float(
                    fast_algorithm1(
                        distance, 2, (distance, distance),
                        np.random.default_rng(derive_seed(23, 9, index, t)),
                        100_000,
                    ).moves_or_budget
                )
                for t in range(4)
            ]
            assert rows[index].estimate.mean == pytest.approx(
                float(np.mean(manual)), abs=0
            )

    def test_point_sharding_across_workers_is_bit_identical(self):
        serial = Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID, trials=4, seed=17,
        ).run()
        sharded = Sweep(
            SimulationTrial(_factory, backend="closed_form"),
            GRID, trials=4, seed=17, workers=2,
        ).run()
        assert [r.estimate for r in serial] == [r.estimate for r in sharded]

    def test_unpicklable_factory_falls_back_to_serial(self):
        offset = 8
        trial = SimulationTrial(
            lambda params: _factory({"D": int(params["D"]) + offset - 8})
        )
        rows = Sweep(trial, GRID, trials=3, seed=5, workers=4).run()
        reference = Sweep(trial, GRID, trials=3, seed=5).run()
        assert [r.estimate for r in rows] == [r.estimate for r in reference]


class TestBatchedCompilation:
    def test_batched_rows_carry_find_rate_extras(self):
        rows = Sweep(
            SimulationTrial(_factory), GRID, trials=10, seed=3
        ).run()
        for row in rows:
            assert 0.0 <= row.extras["find_rate"] <= 1.0
            assert row.estimate.mean > 0

    def test_metric_override(self):
        rows = Sweep(
            SimulationTrial(_factory, metric=_found_metric),
            GRID, trials=10, seed=3,
        ).run()
        for row in rows:
            # The found metric's mean IS the find rate.
            assert row.estimate.mean == pytest.approx(row.extras["find_rate"])

    def test_default_metric_is_censored_moves(self):
        from repro.sim import simulate

        outcome = simulate(
            _factory({"D": 8}), backend="closed_form", cache=False
        ).outcome
        assert censored_moves(outcome) == float(outcome.moves_or_budget)

    def test_compiled_batched_equals_plain_sweep_in_distribution(self):
        """Means agree within Monte-Carlo noise (streams differ by design).

        Coarse by necessity — colony M_moves is heavy-tailed, so two
        independent 1000-trial means can differ by ~20%; the tight KS
        equivalence checks live in
        tests/integration/test_backend_equivalence.py.
        """
        trials = 1000
        plain = Sweep(_per_trial, [{"D": 8}], trials=trials, seed=101).run()
        compiled = Sweep(
            SimulationTrial(_factory), [{"D": 8}], trials=trials, seed=303
        ).run()
        assert compiled.pop().estimate.mean == pytest.approx(
            plain.pop().estimate.mean, rel=0.35
        )

    def test_repeated_sweep_points_are_served_from_cache(self):
        sweep = Sweep(SimulationTrial(_factory), GRID, trials=8, seed=42)
        before = backend_run_count()
        first = sweep.run()
        after_first = backend_run_count()
        second = sweep.run()
        after_second = backend_run_count()
        assert after_first == before + len(GRID)
        assert after_second == after_first  # zero simulations
        assert [r.estimate for r in first] == [r.estimate for r in second]

    def test_cache_false_trial_forces_execution(self):
        sweep = Sweep(
            SimulationTrial(_factory, cache=False), GRID, trials=8, seed=43
        )
        before = backend_run_count()
        sweep.run()
        sweep.run()
        assert backend_run_count() == before + 2 * len(GRID)
