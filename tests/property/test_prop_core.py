"""Property-based tests: coins, selection metric, engine bookkeeping."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.core.base import SearchAlgorithm
from repro.core.coin import CompositeCoin
from repro.core.nonuniform import build_nonuniform_automaton
from repro.core.selection import MemoryMeter, SelectionComplexity
from repro.core.square_search import visit_probability, visit_probability_lower_bound
from repro.core.walk import walk_length_pmf
from repro.grid.world import GridWorld
from repro.sim.engine import EngineConfig, SearchEngine
from repro.sim.trace import TraceRecorder


class TestCoinProperties:
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=6))
    def test_tails_probability_formula(self, k, ell):
        coin = CompositeCoin(k, ell)
        assert coin.tails_probability == 2.0 ** -(k * ell)

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=8))
    def test_memory_bits_formula(self, k, ell):
        assert CompositeCoin(k, ell).memory_bits == (
            math.ceil(math.log2(k)) if k > 1 else 0
        )

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=6))
    def test_for_target_probability_dominates(self, exponent, ell):
        coin = CompositeCoin.for_target_probability(ell, exponent)
        assert coin.tails_probability <= 2.0**-exponent
        # Never overshoots by more than a factor of 2^{ell-1}.
        assert coin.tails_probability >= 2.0 ** -(exponent + ell - 1)


class TestSelectionProperties:
    @given(st.integers(min_value=0, max_value=64), st.floats(min_value=1.0, max_value=64.0))
    def test_chi_monotone_in_both_arguments(self, bits, ell):
        sc = SelectionComplexity(bits=bits, ell=ell)
        assert sc.chi >= bits
        assert SelectionComplexity(bits=bits + 1, ell=ell).chi > sc.chi
        assert SelectionComplexity(bits=bits, ell=ell * 2).chi > sc.chi

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=8))
    def test_memory_meter_bits_bound_product(self, ranges):
        meter = MemoryMeter()
        for index, n in enumerate(ranges):
            meter.declare(f"r{index}", n)
        # Bits upper-bound: encoding the product state space never needs
        # more than the sum of per-register bits (and at most that).
        assert 2**meter.bits >= meter.n_states


class TestProbabilityFormulas:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.tuples(
            st.integers(min_value=-20, max_value=20),
            st.integers(min_value=-20, max_value=20),
        ),
    )
    def test_visit_probability_in_unit_interval_and_symmetric(self, k, ell, target):
        p = visit_probability(k, ell, target)
        assert 0.0 <= p <= 1.0
        x, y = target
        assert visit_probability(k, ell, (-x, y)) == p
        assert visit_probability(k, ell, (x, -y)) == p

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=2))
    @settings(max_examples=30)
    def test_lemma_39_bound_over_whole_square(self, k, ell):
        side = 2 ** (k * ell)
        floor = visit_probability_lower_bound(k, ell)
        # Sample the square's extremes and a diagonal; the bound must hold.
        probes = {(side, side), (0, side), (side, 0), (1, 1), (side // 2, side // 2)}
        for target in probes:
            assert visit_probability(k, ell, target) >= floor

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=50),
    )
    def test_walk_pmf_monotone_decreasing(self, k, ell, length):
        assert walk_length_pmf(k, ell, length) >= walk_length_pmf(k, ell, length + 1)


class RecordedWalk(SearchAlgorithm):
    """Random move/none/origin mix for engine-invariant testing."""

    def __init__(self, script: list[Action]) -> None:
        self._script = script

    def process(self, rng: np.random.Generator):
        yield from self._script
        while True:
            yield Action.NONE


action_scripts = st.lists(
    st.sampled_from(
        [Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT, Action.NONE, Action.ORIGIN]
    ),
    min_size=1,
    max_size=60,
)


class TestEngineInvariants:
    @given(action_scripts)
    @settings(max_examples=150, deadline=None)
    def test_position_is_sum_of_moves_since_last_origin(self, script):
        engine = SearchEngine(EngineConfig(move_budget=1000, step_budget=200))
        world = GridWorld(target=(999, 0), distance_bound=1000)
        trace = TraceRecorder()
        engine.run(RecordedWalk(script), 1, world, rng=1, trace=trace)
        execution = trace.execution(0)
        position = (0, 0)
        for action, recorded in zip(execution.actions, execution.positions):
            if action is Action.ORIGIN:
                position = (0, 0)
            elif action.is_move:
                dx, dy = action.direction.vector
                position = (position[0] + dx, position[1] + dy)
            assert recorded == position

    @given(action_scripts)
    @settings(max_examples=150, deadline=None)
    def test_move_count_equals_move_actions(self, script):
        engine = SearchEngine(EngineConfig(move_budget=1000, step_budget=200))
        world = GridWorld(target=(999, 0), distance_bound=1000)
        outcome = engine.run(RecordedWalk(script), 1, world, rng=1)
        agent = outcome.per_agent[0]
        expected_moves = sum(1 for a in script if a.is_move)
        assert agent.total_moves == expected_moves

    @given(action_scripts, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_m_moves_is_minimum_over_agents(self, script, n_agents):
        engine = SearchEngine(EngineConfig(move_budget=1000, step_budget=200))
        world = GridWorld(target=(1, 1), distance_bound=4)
        outcome = engine.run(RecordedWalk(script), n_agents, world, rng=2)
        if outcome.found:
            finds = [
                agent.moves_at_find
                for agent in outcome.per_agent
                if agent.moves_at_find is not None
            ]
            assert outcome.m_moves == min(finds)


class TestAutomatonStochasticity:
    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40)
    def test_nonuniform_product_machine_always_valid(self, log_d, ell):
        machine = build_nonuniform_automaton(2**log_d, ell)
        matrix = machine.matrix
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)
        positive = matrix[matrix > 0]
        assert positive.min() >= 2.0**-ell - 1e-12
