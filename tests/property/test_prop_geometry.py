"""Property-based tests: geometry invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.geometry import (
    chebyshev,
    chebyshev_norm,
    l_path_hit_moves,
    l_path_hits,
    l_path_points,
    manhattan,
    manhattan_norm,
)
from repro.grid.oracle import bresenham_return_path

points = st.tuples(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)
signs = st.sampled_from([-1, 1])
leg_lengths = st.integers(min_value=0, max_value=30)


class TestNormProperties:
    @given(points, points)
    def test_chebyshev_triangle_inequality(self, a, b):
        assert chebyshev(a, b) <= chebyshev_norm(a) + chebyshev_norm(b)

    @given(points, points)
    def test_chebyshev_symmetry(self, a, b):
        assert chebyshev(a, b) == chebyshev(b, a)

    @given(points)
    def test_norm_sandwich(self, p):
        # max-norm <= L1 <= 2 * max-norm on Z^2.
        assert chebyshev_norm(p) <= manhattan_norm(p) <= 2 * chebyshev_norm(p)

    @given(points, points)
    def test_manhattan_nonnegative_and_identity(self, a, b):
        assert manhattan(a, b) >= 0
        assert (manhattan(a, b) == 0) == (a == b)


class TestLPathProperties:
    @given(points, signs, leg_lengths, signs, leg_lengths)
    @settings(max_examples=300)
    def test_hit_test_equals_enumeration(self, target, sv, lv, sh, lh):
        enumerated = target in set(l_path_points(sv, lv, sh, lh))
        assert l_path_hits(target, sv, lv, sh, lh) == enumerated

    @given(signs, leg_lengths, signs, leg_lengths)
    @settings(max_examples=200)
    def test_hit_moves_equals_first_enumeration_index(self, sv, lv, sh, lh):
        for index, point in enumerate(l_path_points(sv, lv, sh, lh)):
            moves = l_path_hit_moves(point, sv, lv, sh, lh)
            assert moves is not None
            assert moves == index

    @given(signs, leg_lengths, signs, leg_lengths)
    def test_path_length(self, sv, lv, sh, lh):
        assert len(list(l_path_points(sv, lv, sh, lh))) == lv + lh + 1

    @given(points, signs, leg_lengths, signs, leg_lengths)
    @settings(max_examples=200)
    def test_hit_moves_bounded_by_path_length(self, target, sv, lv, sh, lh):
        moves = l_path_hit_moves(target, sv, lv, sh, lh)
        if moves is not None:
            assert 0 <= moves <= lv + lh


class TestOracleProperties:
    @given(points)
    @settings(max_examples=200)
    def test_return_path_is_shortest_and_connected(self, start):
        path = bresenham_return_path(start)
        assert path[0] == start
        assert path[-1] == (0, 0)
        assert len(path) - 1 == manhattan_norm(start)
        for a, b in zip(path, path[1:]):
            assert manhattan(a, b) == 1

    @given(points)
    @settings(max_examples=200)
    def test_return_path_monotone_in_both_axes(self, start):
        """Coordinates never overshoot: |x| and |y| are non-increasing."""
        path = bresenham_return_path(start)
        for a, b in zip(path, path[1:]):
            assert abs(b[0]) <= abs(a[0])
            assert abs(b[1]) <= abs(a[1])
