"""Property-based tests: spiral indexing and Markov classification."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.spiral import spiral_index, spiral_point
from repro.grid.geometry import chebyshev_norm
from repro.markov.chain import MarkovChain
from repro.markov.classify import classify_states, strongly_connected_components
from repro.markov.periodicity import class_period, cyclic_classes
from repro.markov.stationary import stationary_distribution, total_variation


class TestSpiralProperties:
    @given(st.integers(min_value=0, max_value=500_000))
    @settings(max_examples=300)
    def test_index_point_bijection(self, index):
        assert spiral_index(spiral_point(index)) == index

    @given(
        st.tuples(
            st.integers(min_value=-300, max_value=300),
            st.integers(min_value=-300, max_value=300),
        )
    )
    @settings(max_examples=300)
    def test_point_index_bijection(self, point):
        assert spiral_point(spiral_index(point)) == point

    @given(st.integers(min_value=1, max_value=100_000))
    def test_consecutive_points_adjacent(self, index):
        a = spiral_point(index - 1)
        b = spiral_point(index)
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(st.integers(min_value=0, max_value=100_000))
    def test_index_lower_bounds_ring_entry(self, index):
        """Everything at ring r is indexed at least (2r-1)^2."""
        point = spiral_point(index)
        r = chebyshev_norm(point)
        if r > 0:
            assert (2 * r - 1) ** 2 <= index <= (2 * r + 1) ** 2 - 1


def random_stochastic_matrix(draw_seed: int, n: int, density: float) -> np.ndarray:
    """A deterministic random row-stochastic matrix for hypothesis inputs."""
    rng = np.random.default_rng(draw_seed)
    matrix = np.zeros((n, n))
    for i in range(n):
        mask = rng.random(n) < density
        if not mask.any():
            mask[rng.integers(0, n)] = True
        weights = rng.random(n) * mask
        matrix[i] = weights / weights.sum()
    return matrix


chain_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=12),  # states
    st.floats(min_value=0.15, max_value=1.0),  # density
)


class TestClassificationProperties:
    @given(chain_params)
    @settings(max_examples=150)
    def test_scc_is_a_partition(self, params):
        seed, n, density = params
        matrix = random_stochastic_matrix(seed, n, density)
        components = strongly_connected_components(matrix > 0)
        flattened = sorted(state for component in components for state in component)
        assert flattened == list(range(n))

    @given(chain_params)
    @settings(max_examples=150)
    def test_recurrent_classes_are_closed(self, params):
        seed, n, density = params
        chain = MarkovChain(random_stochastic_matrix(seed, n, density))
        classification = classify_states(chain)
        matrix = chain.matrix
        for cls in classification.recurrent_classes:
            members = sorted(cls)
            outside = [s for s in range(n) if s not in cls]
            if outside:
                leak = matrix[np.ix_(members, outside)].sum()
                assert leak < 1e-12

    @given(chain_params)
    @settings(max_examples=150)
    def test_at_least_one_recurrent_class(self, params):
        seed, n, density = params
        chain = MarkovChain(random_stochastic_matrix(seed, n, density))
        classification = classify_states(chain)
        assert classification.n_recurrent_classes >= 1

    @given(chain_params)
    @settings(max_examples=100)
    def test_stationary_distribution_is_fixed_point(self, params):
        seed, n, density = params
        chain = MarkovChain(random_stochastic_matrix(seed, n, density))
        classification = classify_states(chain)
        members = sorted(classification.recurrent_classes[0])
        pi = stationary_distribution(chain, members)
        assert abs(pi.sum() - 1.0) < 1e-9
        assert np.all(pi >= -1e-12)
        # Restricted fixed point: pi P = pi on the closed class.
        np.testing.assert_allclose(pi @ chain.matrix, pi, atol=1e-8)

    @given(chain_params)
    @settings(max_examples=100)
    def test_cyclic_classes_partition_and_rotate(self, params):
        seed, n, density = params
        chain = MarkovChain(random_stochastic_matrix(seed, n, density))
        classification = classify_states(chain)
        members = sorted(classification.recurrent_classes[0])
        period = class_period(chain, members)
        classes = cyclic_classes(chain, members)
        assert len(classes) == period
        assert sorted(sum(classes, [])) == members
        index_of = {}
        for tau, group in enumerate(classes):
            for state in group:
                index_of[state] = tau
        adjacency = chain.adjacency()
        for u in members:
            for v in np.flatnonzero(adjacency[u]):
                if int(v) in index_of:
                    assert index_of[int(v)] == (index_of[u] + 1) % period

    @given(chain_params, st.integers(min_value=1, max_value=64))
    @settings(max_examples=80)
    def test_distribution_after_stays_on_simplex(self, params, steps):
        seed, n, density = params
        chain = MarkovChain(random_stochastic_matrix(seed, n, density))
        distribution = chain.distribution_after(steps)
        assert abs(distribution.sum() - 1.0) < 1e-9
        assert np.all(distribution >= -1e-12)

    @given(chain_params)
    @settings(max_examples=80)
    def test_tv_distance_axioms(self, params):
        seed, n, density = params
        chain = MarkovChain(random_stochastic_matrix(seed, n, density))
        p = chain.distribution_after(1)
        q = chain.distribution_after(2)
        assert total_variation(p, p) == 0.0
        assert 0.0 <= total_variation(p, q) <= 1.0 + 1e-12
        assert total_variation(p, q) == total_variation(q, p)
