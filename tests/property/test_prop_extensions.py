"""Property-based tests: hitting times, robustness, multi-target worlds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.grid.multi import MultiTargetWorld
from repro.markov.chain import MarkovChain
from repro.markov.classify import classify_states
from repro.markov.hitting import (
    absorption_time_distribution_tail,
    expected_absorption_time,
    expected_hitting_times,
    expected_return_time,
)
from repro.markov.stationary import stationary_distribution
from repro.robustness.perturbation import perturb_automaton, perturb_probability


def dense_chain(seed: int, n: int) -> MarkovChain:
    """A fully supported random chain (irreducible by construction)."""
    rng = np.random.default_rng(seed)
    matrix = rng.random((n, n)) + 0.05
    matrix /= matrix.sum(axis=1, keepdims=True)
    return MarkovChain(matrix)


chain_params = st.tuples(
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=2, max_value=10),
)


class TestHittingProperties:
    @given(chain_params, st.integers(min_value=0, max_value=9))
    @settings(max_examples=100)
    def test_hitting_times_nonnegative_and_zero_at_target(self, params, raw_target):
        seed, n = params
        chain = dense_chain(seed, n)
        target = raw_target % n
        times = expected_hitting_times(chain, target)
        assert times[target] == 0.0
        assert np.all(times >= 0.0)

    @given(chain_params, st.integers(min_value=0, max_value=9))
    @settings(max_examples=60)
    def test_kac_identity(self, params, raw_state):
        seed, n = params
        chain = dense_chain(seed, n)
        state = raw_state % n
        pi = stationary_distribution(chain)
        assert expected_return_time(chain, state) == pytest.approx(
            1.0 / pi[state], rel=1e-6
        )

    @given(chain_params)
    @settings(max_examples=60)
    def test_hitting_time_first_step_equation(self, params):
        seed, n = params
        chain = dense_chain(seed, n)
        times = expected_hitting_times(chain, 0)
        matrix = chain.matrix
        for state in range(1, n):
            expected = 1.0 + matrix[state] @ times
            assert times[state] == pytest.approx(expected, rel=1e-8)

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60)
    def test_absorption_tail_is_monotone_and_sums_to_expectation(self, seed):
        rng = np.random.default_rng(seed)
        alpha = 0.1 + 0.8 * rng.random()
        chain = MarkovChain(np.array([[1 - alpha, alpha], [0.0, 1.0]]))
        tail = absorption_time_distribution_tail(chain, 200)
        assert np.all(np.diff(tail) <= 1e-12)
        # E[T] = sum_{r>=0} P[T > r]; the truncated survival sum must
        # approach the exact expectation 1/alpha from below.
        truncated_sum = float(tail.sum()) - tail[0] + 1.0  # P[T>0] = 1
        expectation = expected_absorption_time(chain)
        assert expectation == pytest.approx(1.0 / alpha, rel=1e-9)
        assert truncated_sum <= expectation + 1e-9
        assert truncated_sum == pytest.approx(expectation, rel=0.01)


class TestRobustnessProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_perturbed_probability_in_unit_interval(self, p, eps, seed):
        rng = np.random.default_rng(seed)
        assert 0.0 <= perturb_probability(p, eps, rng) <= 1.0

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.04),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_perturbation_bounded_by_epsilon(self, p, eps, seed):
        rng = np.random.default_rng(seed)
        assert abs(perturb_probability(p, eps, rng) - p) <= eps + 1e-12

    @given(st.integers(min_value=0, max_value=5000), st.floats(min_value=0.0, max_value=0.2))
    @settings(max_examples=80)
    def test_perturbed_automaton_valid(self, seed, eps):
        from repro.markov.random_automata import random_bounded_automaton

        rng = np.random.default_rng(seed)
        machine = random_bounded_automaton(rng, bits=2, ell=2)
        noisy = perturb_automaton(machine, eps, rng)
        np.testing.assert_allclose(noisy.matrix.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(noisy.matrix[machine.matrix == 0.0] == 0.0)


points = st.tuples(
    st.integers(min_value=-10, max_value=10),
    st.integers(min_value=-10, max_value=10),
)


class TestMultiWorldProperties:
    @given(st.lists(points, min_size=1, max_size=8, unique=True))
    @settings(max_examples=150)
    def test_union_semantics_match_membership(self, targets):
        world = MultiTargetWorld(targets, distance_bound=10)
        for x in range(-3, 4):
            for y in range(-3, 4):
                assert world.is_target((x, y)) == ((x, y) in targets)

    @given(st.lists(points, min_size=1, max_size=8, unique=True))
    @settings(max_examples=100)
    def test_discovery_monotone(self, targets):
        world = MultiTargetWorld(targets, distance_bound=10)
        assert world.undiscovered() == list(targets)
        for target in targets:
            world.is_target(target)
        assert world.all_discovered
        assert world.undiscovered() == []

    @given(st.lists(points, min_size=1, max_size=8, unique=True))
    @settings(max_examples=100)
    def test_nearest_target_is_minimal(self, targets):
        from repro.grid.geometry import chebyshev_norm

        world = MultiTargetWorld(targets, distance_bound=10)
        nearest = world.target
        assert chebyshev_norm(nearest) == min(
            chebyshev_norm(t) for t in targets
        )
