"""Statistical equivalence of the batched backend against the reference.

The batched backend samples iterations from exactly the process
distribution, so its colony ``M_moves`` must be equal in distribution
to the faithful engine's.  These tests check that with a two-sample KS
test (Algorithm 1) and mean comparisons (Non-Uniform-Search,
Algorithm 5), mirroring the closed-form equivalence suite in
``test_equivalence.py`` — plus KS checks against both ``reference``
and ``closed_form`` for the three algorithm families the batch pass
gained: ``doubly-uniform``, ``random-walk``, and ``feinerman``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.stats import ks_statistic, ks_two_sample_threshold


def _moves(spec, n_agents, target, budget, trials, seed, backend):
    request = SimulationRequest(
        algorithm=spec,
        n_agents=n_agents,
        target=target,
        move_budget=budget,
        n_trials=trials,
        seed=seed,
        distance_bound=64,
    )
    return simulate(request, backend=backend).moves_or_budget().astype(float)


class TestBatchedVsReference:
    def test_algorithm1_distributions_ks_close(self):
        spec = AlgorithmSpec.algorithm1(8)
        trials = 300
        via_reference = _moves(spec, 2, (5, 3), 500_000, trials, 41, "reference")
        via_batched = _moves(spec, 2, (5, 3), 500_000, trials, 42, "batched")
        distance = ks_statistic(via_reference, via_batched)
        # alpha = 0.001: flake-resistant while still sensitive to any
        # systematic distribution mismatch at these sample sizes.
        assert distance <= ks_two_sample_threshold(trials, trials, alpha=0.001)

    def test_nonuniform_means_match(self):
        spec = AlgorithmSpec.nonuniform(8, 1)
        via_reference = _moves(spec, 2, (4, -2), 500_000, 200, 3, "reference")
        via_batched = _moves(spec, 2, (4, -2), 500_000, 400, 4, "batched")
        assert via_reference.mean() == pytest.approx(
            via_batched.mean(), rel=0.2
        )

    def test_uniform_means_match(self):
        spec = AlgorithmSpec.uniform(1)
        via_reference = _moves(spec, 2, (3, 3), 2_000_000, 120, 5, "reference")
        via_batched = _moves(spec, 2, (3, 3), 2_000_000, 400, 6, "batched")
        assert via_reference.mean() == pytest.approx(
            via_batched.mean(), rel=0.25
        )

    def test_batched_matches_closed_form_distribution(self):
        """The two vectorized paths agree with each other too (cheap, tight)."""
        spec = AlgorithmSpec.algorithm1(8)
        trials = 1200
        via_closed = _moves(spec, 2, (5, 3), 500_000, trials, 7, "closed_form")
        via_batched = _moves(spec, 2, (5, 3), 500_000, trials, 8, "batched")
        distance = ks_statistic(via_closed, via_batched)
        assert distance <= ks_two_sample_threshold(trials, trials, alpha=0.001)


class TestNewlyBatchedAlgorithms:
    """Equivalence for the families the batch pass gained in this PR."""

    def _ks_vs_reference(self, spec, target, budget, ref_trials, batch_trials, seed):
        via_reference = _moves(spec, 2, target, budget, ref_trials, seed, "reference")
        via_batched = _moves(
            spec, 2, target, budget, batch_trials, seed + 1, "batched"
        )
        distance = ks_statistic(via_reference, via_batched)
        # alpha = 0.001, as above: flake-resistant yet sensitive to any
        # systematic mismatch.
        assert distance <= ks_two_sample_threshold(
            ref_trials, batch_trials, alpha=0.001
        )

    def test_random_walk_vs_reference_ks(self):
        self._ks_vs_reference(
            AlgorithmSpec.random_walk(), (3, 2), 20_000, 250, 500, 51
        )

    def test_feinerman_vs_reference_ks(self):
        self._ks_vs_reference(
            AlgorithmSpec.feinerman(), (5, 3), 100_000, 300, 900, 61
        )

    def test_doubly_uniform_vs_reference_ks(self):
        self._ks_vs_reference(
            AlgorithmSpec.doubly_uniform(1), (3, 3), 1_000_000, 250, 750, 71
        )

    def test_doubly_uniform_means_match_reference(self):
        spec = AlgorithmSpec.doubly_uniform(1)
        via_reference = _moves(spec, 2, (3, 3), 1_000_000, 250, 81, "reference")
        via_batched = _moves(spec, 2, (3, 3), 1_000_000, 750, 82, "batched")
        assert via_reference.mean() == pytest.approx(
            via_batched.mean(), rel=0.25
        )

    def test_random_walk_find_rates_match_reference(self):
        """Censored-at-budget mass agrees (the walk's mean is a budget
        artifact, so the find rate is the robust comparison)."""
        budget = 20_000
        spec = AlgorithmSpec.random_walk()
        via_reference = _moves(spec, 2, (3, 2), budget, 250, 91, "reference")
        via_batched = _moves(spec, 2, (3, 2), budget, 750, 92, "batched")
        rate_reference = float((via_reference < budget).mean())
        rate_batched = float((via_batched < budget).mean())
        assert rate_reference == pytest.approx(rate_batched, abs=0.1)

    def test_batched_matches_closed_form_ks_all_new_families(self):
        """Vectorized-vs-vectorized, cheap enough for tight sample sizes."""
        cases = [
            (AlgorithmSpec.doubly_uniform(1), (3, 3), 1_000_000, 1000, 101),
            (AlgorithmSpec.random_walk(), (3, 2), 20_000, 1000, 111),
            (AlgorithmSpec.feinerman(), (5, 3), 100_000, 1500, 121),
        ]
        for spec, target, budget, trials, seed in cases:
            via_closed = _moves(spec, 2, target, budget, trials, seed, "closed_form")
            via_batched = _moves(spec, 2, target, budget, trials, seed + 1, "batched")
            distance = ks_statistic(via_closed, via_batched)
            assert distance <= ks_two_sample_threshold(
                trials, trials, alpha=0.001
            ), spec.name


class TestParallelSweepBitIdentity:
    def test_sweep_workers_4_reproduces_serial_reference_rows(self):
        """The acceptance criterion: parallel == serial, bit for bit."""
        from repro.sim.runner import Sweep, grid_product

        grid = grid_product(distance=[8, 12], n=[1, 2])
        serial = Sweep(_reference_trial, grid, trials=3, seed=17, workers=1).run()
        parallel = Sweep(_reference_trial, grid, trials=3, seed=17, workers=4).run()
        for row_s, row_p in zip(serial, parallel):
            assert row_s.params == row_p.params
            assert row_s.estimate == row_p.estimate

    def test_facade_workers_shard_reference_backend_identically(self):
        spec = AlgorithmSpec.algorithm1(8)
        request = SimulationRequest(
            algorithm=spec, n_agents=2, target=(5, 3),
            move_budget=200_000, n_trials=6, seed=9,
        )
        serial = simulate(request, backend="reference", workers=1)
        sharded = simulate(request, backend="reference", workers=4)
        assert list(serial.moves_or_budget()) == list(sharded.moves_or_budget())
        assert [o.m_steps for o in serial.outcomes] == [
            o.m_steps for o in sharded.outcomes
        ]


def _reference_trial(params, rng):
    """Module-level engine trial (picklable for the process pool)."""
    from repro.core.algorithm1 import Algorithm1
    from repro.grid.world import GridWorld
    from repro.sim.engine import EngineConfig, SearchEngine

    distance = int(params["distance"])
    n_agents = int(params["n"])
    engine = SearchEngine(EngineConfig(move_budget=100_000))
    world = GridWorld(target=(distance, distance), distance_bound=distance)
    outcome = engine.run(
        Algorithm1(distance), n_agents, world, rng=rng.spawn(n_agents)
    )
    return float(outcome.moves_or_budget)
