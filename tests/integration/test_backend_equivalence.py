"""Statistical equivalence of the batched backend against the reference.

The batched backend samples sorties from exactly the process
distribution, so its colony ``M_moves`` must be equal in distribution
to the faithful engine's.  These tests check that with a two-sample KS
test (Algorithm 1) and mean comparisons (Non-Uniform-Search,
Algorithm 5), mirroring the closed-form equivalence suite in
``test_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.stats import ks_statistic, ks_two_sample_threshold


def _moves(spec, n_agents, target, budget, trials, seed, backend):
    request = SimulationRequest(
        algorithm=spec,
        n_agents=n_agents,
        target=target,
        move_budget=budget,
        n_trials=trials,
        seed=seed,
        distance_bound=64,
    )
    return simulate(request, backend=backend).moves_or_budget().astype(float)


class TestBatchedVsReference:
    def test_algorithm1_distributions_ks_close(self):
        spec = AlgorithmSpec.algorithm1(8)
        trials = 300
        via_reference = _moves(spec, 2, (5, 3), 500_000, trials, 41, "reference")
        via_batched = _moves(spec, 2, (5, 3), 500_000, trials, 42, "batched")
        distance = ks_statistic(via_reference, via_batched)
        # alpha = 0.001: flake-resistant while still sensitive to any
        # systematic distribution mismatch at these sample sizes.
        assert distance <= ks_two_sample_threshold(trials, trials, alpha=0.001)

    def test_nonuniform_means_match(self):
        spec = AlgorithmSpec.nonuniform(8, 1)
        via_reference = _moves(spec, 2, (4, -2), 500_000, 200, 3, "reference")
        via_batched = _moves(spec, 2, (4, -2), 500_000, 400, 4, "batched")
        assert via_reference.mean() == pytest.approx(
            via_batched.mean(), rel=0.2
        )

    def test_uniform_means_match(self):
        spec = AlgorithmSpec.uniform(1)
        via_reference = _moves(spec, 2, (3, 3), 2_000_000, 120, 5, "reference")
        via_batched = _moves(spec, 2, (3, 3), 2_000_000, 400, 6, "batched")
        assert via_reference.mean() == pytest.approx(
            via_batched.mean(), rel=0.25
        )

    def test_batched_matches_closed_form_distribution(self):
        """The two vectorized paths agree with each other too (cheap, tight)."""
        spec = AlgorithmSpec.algorithm1(8)
        trials = 1200
        via_closed = _moves(spec, 2, (5, 3), 500_000, trials, 7, "closed_form")
        via_batched = _moves(spec, 2, (5, 3), 500_000, trials, 8, "batched")
        distance = ks_statistic(via_closed, via_batched)
        assert distance <= ks_two_sample_threshold(trials, trials, alpha=0.001)


class TestParallelSweepBitIdentity:
    def test_sweep_workers_4_reproduces_serial_reference_rows(self):
        """The acceptance criterion: parallel == serial, bit for bit."""
        from repro.sim.runner import Sweep, grid_product

        grid = grid_product(distance=[8, 12], n=[1, 2])
        serial = Sweep(_reference_trial, grid, trials=3, seed=17, workers=1).run()
        parallel = Sweep(_reference_trial, grid, trials=3, seed=17, workers=4).run()
        for row_s, row_p in zip(serial, parallel):
            assert row_s.params == row_p.params
            assert row_s.estimate == row_p.estimate

    def test_facade_workers_shard_reference_backend_identically(self):
        spec = AlgorithmSpec.algorithm1(8)
        request = SimulationRequest(
            algorithm=spec, n_agents=2, target=(5, 3),
            move_budget=200_000, n_trials=6, seed=9,
        )
        serial = simulate(request, backend="reference", workers=1)
        sharded = simulate(request, backend="reference", workers=4)
        assert list(serial.moves_or_budget()) == list(sharded.moves_or_budget())
        assert [o.m_steps for o in serial.outcomes] == [
            o.m_steps for o in sharded.outcomes
        ]


def _reference_trial(params, rng):
    """Module-level engine trial (picklable for the process pool)."""
    from repro.core.algorithm1 import Algorithm1
    from repro.grid.world import GridWorld
    from repro.sim.engine import EngineConfig, SearchEngine

    distance = int(params["distance"])
    n_agents = int(params["n"])
    engine = SearchEngine(EngineConfig(move_budget=100_000))
    world = GridWorld(target=(distance, distance), distance_bound=distance)
    outcome = engine.run(
        Algorithm1(distance), n_agents, world, rng=rng.spawn(n_agents)
    )
    return float(outcome.moves_or_budget)
