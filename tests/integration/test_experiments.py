"""Integration tests: the experiment registry at smoke scale.

The fast experiments run end-to-end here (the slow ones are exercised
by the benchmark harness, which is their natural home); every run must
produce a table, at least one check, and all checks must pass.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.experiments import REGISTRY
from repro.experiments.base import check_scale

FAST_EXPERIMENTS = [
    "E01", "E02", "E04", "E05", "E06", "E08", "E09", "E11", "E14", "E15", "E16",
]


class TestRegistry:
    def test_all_sixteen_registered(self):
        assert sorted(REGISTRY) == [f"E{i:02d}" for i in range(1, 17)]

    def test_scale_validation(self):
        with pytest.raises(InvalidParameterError):
            check_scale("huge")

    @pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
    def test_fast_experiments_pass_at_smoke_scale(self, experiment_id):
        result = REGISTRY[experiment_id](scale="smoke")
        assert result.experiment_id == experiment_id
        assert result.checks, "every experiment must assert something"
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{experiment_id} failed: {failed}"
        assert "|" in result.table  # markdown table present

    def test_results_render_to_markdown(self):
        result = REGISTRY["E04"](scale="smoke")
        text = result.to_markdown()
        assert text.startswith("### E04")
        assert "**Paper claim.**" in text
        assert "[PASS]" in text

    def test_experiments_are_seed_reproducible(self):
        first = REGISTRY["E01"](scale="smoke", seed=5)
        second = REGISTRY["E01"](scale="smoke", seed=5)
        assert first.table == second.table

    def test_different_seeds_change_measurements(self):
        first = REGISTRY["E01"](scale="smoke", seed=5)
        second = REGISTRY["E01"](scale="smoke", seed=6)
        assert first.table != second.table
