"""End-to-end scenario tests stitching the whole library together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Algorithm1,
    EngineConfig,
    GridWorld,
    NonUniformSearch,
    SearchEngine,
    UniformSearch,
    speedup,
)
from repro.core.uniform import calibrated_K
from repro.grid.targets import RingTarget, UniformSquareTarget
from repro.lowerbound.certify import certify
from repro.lowerbound.colony import simulate_colony
from repro.sim.fast import fast_algorithm1
from repro.sim.rng import derive_seed


class TestUpperBoundPipeline:
    def test_colony_beats_single_agent(self, rng_factory):
        """The headline speed-up, measured through the public API."""
        distance, target = 24, (24, 24)
        budget = 10**7
        trials = 120

        def mean_moves(n_agents, tag):
            samples = []
            for trial in range(trials):
                generator = np.random.default_rng(derive_seed(77, tag, trial))
                samples.append(
                    fast_algorithm1(distance, n_agents, target, generator, budget)
                    .moves_or_budget
                )
            return float(np.mean(samples))

        single = mean_moves(1, 0)
        colony = mean_moves(8, 1)
        measured = speedup(single, colony)
        assert 3.0 <= measured <= 16.0  # ~8, generous CI

    def test_uniform_search_does_not_need_distance(self):
        """One UniformSearch instance handles targets at any distance."""
        algorithm = UniformSearch(n_agents=4, ell=1, K=calibrated_K(1))
        engine = SearchEngine(EngineConfig(move_budget=5_000_000))
        for seed, target in [(1, (2, 0)), (2, (9, -6)), (3, (17, 20))]:
            world = GridWorld(target=target, distance_bound=32)
            outcome = engine.run(algorithm, 4, world, rng=seed)
            assert outcome.found, target

    def test_random_placements_all_found(self, rng):
        placement = UniformSquareTarget(12)
        engine = SearchEngine(EngineConfig(move_budget=3_000_000))
        for trial in range(5):
            target = placement(rng)
            world = GridWorld(target=target, distance_bound=12)
            outcome = engine.run(NonUniformSearch(12, 1), 4, world, rng=trial)
            assert outcome.found, target

    def test_ring_targets_hardest_for_bound(self, rng):
        """Ring placements at exact distance D stay within the envelope."""
        from repro.core import theory

        distance, trials = 16, 60
        placement = RingTarget(distance)
        totals = []
        for trial in range(trials):
            target = placement(rng)
            outcome = fast_algorithm1(
                distance, 4, target, np.random.default_rng(trial), 10**7
            )
            totals.append(outcome.moves_or_budget)
        assert np.mean(totals) <= theory.expected_moves_upper_bound(distance, 4)


class TestModelClaims:
    def test_return_paths_cost_at_most_factor_two(self):
        """Section 2: charging oracle returns at most doubles M_moves."""
        distance, n_agents, target = 8, 2, (5, 4)
        trials = 150

        def mean_moves(count_returns: bool, seed: int) -> float:
            engine = SearchEngine(
                EngineConfig(move_budget=500_000, count_return_moves=count_returns)
            )
            samples = []
            for trial in range(trials):
                world = GridWorld(target=target, distance_bound=distance)
                outcome = engine.run(
                    Algorithm1(distance),
                    n_agents,
                    world,
                    rng=np.random.SeedSequence([seed, trial]),
                )
                samples.append(outcome.moves_or_budget)
            return float(np.mean(samples))

        without = mean_moves(False, 21)
        with_returns = mean_moves(True, 22)
        assert with_returns <= 2.3 * without  # 2x claim + Monte-Carlo slack
        assert with_returns >= 0.9 * without


class TestLowerBoundPipeline:
    def test_certificate_predicts_simulation(self, rng):
        """certify() then simulate_colony(): prediction must hold."""
        from repro.markov.random_automata import biased_walk_automaton

        automaton = biased_walk_automaton([4, 1, 1, 2], ell=3)
        distance = 32
        certificate = certify(automaton, distance, 8)
        result = simulate_colony(
            automaton,
            8,
            certificate.horizon,
            rng,
            window_radius=distance,
            target=certificate.adversarial_placement,
        )
        assert not result.found
        # Coverage stays within an order of magnitude of the envelope.
        assert result.coverage_fraction <= 10 * certificate.predicted_coverage

    def test_above_threshold_algorithm_finds_what_below_misses(self, rng):
        from repro.markov.random_automata import uniform_walk_automaton
        from repro.lowerbound.theory import horizon_moves

        distance = 24
        horizon = horizon_moves(distance, 0.25)
        automaton = uniform_walk_automaton()
        target = (distance, distance)

        below = simulate_colony(
            automaton, 8, horizon, rng, window_radius=distance, target=target
        )
        assert not below.found

        n_contrast = int(np.ceil(256 * distance**0.25))
        found = 0
        for trial in range(10):
            outcome = fast_algorithm1(
                distance, n_contrast, target, np.random.default_rng(trial), horizon
            )
            found += outcome.found
        assert found >= 5


class TestDocstringExample:
    def test_package_docstring_quickstart(self):
        """The example in repro.__doc__ must actually work."""
        world = GridWorld(target=(5, 3), distance_bound=8)
        engine = SearchEngine(EngineConfig(move_budget=50_000))
        outcome = engine.run(UniformSearch(n_agents=4), 4, world, rng=7)
        assert outcome.found

    def test_chi_ordering_matches_paper_story(self):
        """nonuniform < algorithm1 < uniform < feinerman in chi, at large D."""
        from repro.baselines.feinerman import FeinermanSearch

        distance = 4096
        nonuniform = NonUniformSearch(distance, 1).selection_complexity().chi
        algorithm1 = Algorithm1(distance).selection_complexity().chi
        uniform = (
            UniformSearch(8, 1).selection_complexity_for_distance(distance).chi
        )
        feinerman = (
            FeinermanSearch(8).selection_complexity_for_distance(distance).chi
        )
        assert nonuniform < algorithm1 < feinerman
        assert nonuniform < uniform < feinerman
