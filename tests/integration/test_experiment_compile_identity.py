"""Compiled vs uncompiled experiment identity at smoke scale.

The experiment compiler's core promise: routing an experiment through
``compile_program`` / ``execute_program`` (merged IR, fused jobs,
cache scatter) produces an :class:`ExperimentResult` — tables, checks,
notes, every byte — identical to the historical sequential ``run()``.
Each side executes against its own fresh cache directory so neither
can borrow the other's results.
"""

from __future__ import annotations

import pytest

import repro.sim.cache as cache_module
from repro.experiments import REGISTRY, SPEC_REGISTRY
from repro.experiments.base import DEFAULT_SEED
from repro.experiments.compiler import compile_program, execute_program
from repro.sim.cache import configure_cache


@pytest.fixture
def split_caches(tmp_path):
    """Two isolated cache dirs; restores the session default after."""
    yield tmp_path / "compiled", tmp_path / "sequential"
    configure_cache(
        directory=cache_module.default_cache_dir(), max_memory_entries=256
    )


@pytest.mark.parametrize("key", ["E03", "E09", "E13"])
def test_compiled_result_bit_identical(key, split_caches):
    compiled_dir, sequential_dir = split_caches

    configure_cache(directory=compiled_dir)
    program = compile_program([SPEC_REGISTRY[key]("smoke")], "smoke", DEFAULT_SEED)
    assert program.stats.declared_points > 0
    report = execute_program(program)
    compiled = report.results[key]

    configure_cache(directory=sequential_dir)
    sequential = REGISTRY[key](scale="smoke", seed=DEFAULT_SEED)

    assert compiled == sequential


def test_compiled_report_text_byte_identical(split_caches):
    """The rendered report matches too — shared section assembly."""
    from repro.experiments.__main__ import generate_report

    compiled_dir, sequential_dir = split_caches
    silent = lambda message: None

    configure_cache(directory=compiled_dir)
    compiled_text, compiled_failures = generate_report(
        only="E03,E04", compiled=True, echo=silent
    )
    configure_cache(directory=sequential_dir)
    sequential_text, sequential_failures = generate_report(
        only="E03,E04", compiled=False, echo=silent
    )

    assert compiled_text == sequential_text
    assert compiled_failures == sequential_failures == 0
