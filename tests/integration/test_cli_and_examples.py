"""Integration tests: CLI subcommands and the example scripts."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

from repro.cli import main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestCli:
    def test_run_finds_target(self, capsys):
        code = main(
            [
                "run", "--algorithm", "nonuniform", "--distance", "16",
                "--agents", "4", "--budget", "5000000", "--seed", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "found     : yes" in captured
        assert "chi" in captured

    def test_run_with_explicit_target(self, capsys):
        code = main(
            [
                "run", "--algorithm", "spiral", "--distance", "8",
                "--agents", "1", "--target", "3", "-2", "--seed", "1",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "(3, -2)" in captured

    def test_run_budget_exhaustion_exit_code(self, capsys):
        code = main(
            [
                "run", "--algorithm", "random-walk", "--distance", "64",
                "--agents", "1", "--budget", "50", "--seed", "1",
            ]
        )
        assert code == 1
        assert "no within budget" in capsys.readouterr().out

    def test_certify(self, capsys):
        code = main(
            ["certify", "--family", "uniform-walk", "--distance", "64"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "chi = 4.000" in captured
        assert "adversarial target" in captured

    def test_coverage(self, capsys):
        code = main(
            [
                "coverage", "--family", "biased-walk", "--distance", "16",
                "--agents", "4", "--rounds", "200",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "cells visited" in captured

    def test_experiment_subcommand(self, capsys):
        code = main(["experiment", "e04"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "### E04" in captured

    def test_experiment_unknown_id(self, capsys):
        code = main(["experiment", "E99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_algorithm_reports_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "teleport"])

    def test_run_with_explicit_backend_and_trials(self, capsys):
        code = main(
            [
                "run", "--algorithm", "algorithm1", "--distance", "16",
                "--agents", "4", "--budget", "5000000", "--seed", "3",
                "--backend", "batched", "--trials", "20",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "backend   : batched" in captured
        assert "trials    : 20" in captured

    def test_run_workers_shard(self, capsys):
        code = main(
            [
                "run", "--algorithm", "nonuniform", "--distance", "16",
                "--budget", "5000000", "--trials", "4", "--workers", "2",
                "--backend", "closed_form",
            ]
        )
        assert code == 0
        assert "find rate" in capsys.readouterr().out

    def test_backends_subcommand_lists_registry(self, capsys):
        code = main(["backends"])
        captured = capsys.readouterr().out
        assert code == 0
        for name in ("reference", "closed_form", "batched"):
            assert name in captured
        assert "algorithm1" in captured

    def test_backends_subcommand_shows_priorities_and_resolution(self, capsys):
        code = main(["backends"])
        captured = capsys.readouterr().out
        assert code == 0
        # The batched backend's raised batch priority is visible...
        assert "p5/p30" in captured
        # ...and the resolution report explains what auto picks.
        assert "trial batch -> batched" in captured
        assert "single trial -> closed_form" in captured
        assert "single trial -> reference" in captured  # spiral/levy

    def test_backends_subcommand_shows_decline_reasons_and_binding(
        self, capsys
    ):
        code = main(["backends"])
        captured = capsys.readouterr().out
        assert code == 0
        # The accelerator row exists, the kernel-binding summary names
        # the namespaces, and declines come with their reasons.
        assert "accelerator" in captured
        assert "kernel namespaces importable" in captured
        assert "why backends decline" in captured
        assert "no batch kernel" in captured

    def test_run_unsupported_backend_reports_error(self, capsys):
        code = main(
            ["run", "--algorithm", "spiral", "--backend", "batched"]
        )
        assert code == 2
        assert "does not support" in capsys.readouterr().err

    def test_run_cache_flags_parse_and_execute(self, capsys):
        args = [
            "run", "--algorithm", "algorithm1", "--distance", "16",
            "--budget", "5000000", "--trials", "8", "--seed", "99",
        ]
        assert main([*args, "--no-cache"]) == 0
        assert main([*args, "--cache"]) == 0
        assert main([*args, "--cache"]) == 0  # served from cache
        assert "find rate" in capsys.readouterr().out

    def test_cache_subcommand_info_and_clear(self, capsys):
        from repro.sim import AlgorithmSpec, SimulationRequest, simulate

        simulate(
            SimulationRequest(
                algorithm=AlgorithmSpec.algorithm1(8), n_agents=2,
                target=(5, 3), move_budget=100_000, n_trials=4, seed=1,
            )
        )
        code = main(["cache", "info"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "directory" in captured
        assert "code version" in captured
        code = main(["cache", "clear"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "cache cleared" in captured


class TestJobsStatusFallback:
    def test_status_of_evicted_finished_job_reads_the_ledger(self, capsys):
        """`jobs status` answers from the JSON ledger once the live
        SimulationJob has been evicted from the in-process registry."""
        import time

        from repro.sim import AlgorithmSpec, SimulationRequest
        from repro.sim.jobs import find_job_record, get_manager, simulate_async

        request = SimulationRequest(
            algorithm=AlgorithmSpec.algorithm1(8),
            n_agents=2,
            target=(8, 8),
            move_budget=200_000,
            n_trials=2,
            seed=616,
        )
        job = simulate_async(request, backend="closed_form", cache=False)
        job.result()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            record = find_job_record(job.job_id)
            if record is not None and record.get("state") == "done":
                break
            time.sleep(0.02)
        manager = get_manager()
        with manager._lock:
            manager._jobs.pop(job.job_id, None)
        assert manager.get(job.job_id) is None

        code = main(["jobs", "status", job.job_id])
        captured = capsys.readouterr().out
        assert code == 0
        assert "state        : done" in captured
        assert job.job_id in captured

    def test_status_of_unknown_job_still_errors(self, capsys):
        code = main(["jobs", "status", "job-never-existed"])
        assert code == 2
        assert "no record" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_parser_wiring(self):
        from repro.cli import _cmd_serve, build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-jobs", "2"]
        )
        assert args.func is _cmd_serve
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.max_jobs == 2

    def test_cache_info_reports_shard_counters(self, capsys):
        code = main(["cache", "info"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "shard level" in captured


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "state_machine_tour.py",
        "lowerbound_demo.py",
        # remote_quickstart.py is exercised by CI's dedicated serving
        # smoke step (and its behavior by tests/integration/
        # test_server.py) — not repeated here.
    ],
)
def test_example_scripts_run(script):
    """The cheap examples must execute cleanly as subprocesses."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_examples_directory_complete():
    """All six documented examples exist and are non-trivial."""
    expected = {
        "quickstart.py",
        "foraging_colony.py",
        "tradeoff_explorer.py",
        "lowerbound_demo.py",
        "state_machine_tour.py",
        "remote_quickstart.py",
    }
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present
    for name in expected:
        assert (EXAMPLES_DIR / name).read_text().count("\n") > 30
