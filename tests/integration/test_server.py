"""The serving layer end to end, over a real socket.

Pins the ISSUE's acceptance criteria:

* **remote/local equivalence** — for a fixed seed, a request submitted
  through :class:`RemoteClient` returns outcomes identical to
  in-process :func:`simulate` (same ``derive_seed`` addressing);
* **SSE completeness** — the event stream of a multi-shard job
  delivers every shard, with monotonically increasing event ids, the
  trial ranges tiling the full request;
* **429 + backoff** — submissions beyond ``max_jobs`` receive 429 with
  ``Retry-After``, and a backing-off client completes anyway;

plus status fallback to the JSON ledger for jobs evicted from the
in-process registry, cancellation, sweeps, and the stats/backends
routes.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.errors import JobCancelledError
from repro.server.client import RemoteClient, RemoteServerError
from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.backends.base import SimulationBackend
from repro.sim.backends.registry import register_backend
from repro.sim.jobs import (
    JobState,
    find_job_record,
    get_manager,
    job_status_record,
)
from repro.sim.metrics import SearchOutcome
from repro.sim.runner import SimulationTrial, Sweep


def _request(**overrides) -> SimulationRequest:
    fields = dict(
        algorithm=AlgorithmSpec.algorithm1(8),
        n_agents=4,
        target=(8, 8),
        move_budget=300_000,
        n_trials=6,
        seed=424242,
    )
    fields.update(overrides)
    return SimulationRequest(**fields)


#: Sentinel first seed key marking a request as addressed to the slow
#: test backend — supports() claims nothing else, so the registered
#: backend can never leak into auto resolution for ordinary requests
#: (other test modules assert the exact auto-resolution table).
_SLOW_KEY = 987_654_321


class _SlowBackend(SimulationBackend):
    """Deterministically slow: holds a job RUNNING for the 429 tests."""

    name = "slowtest"
    seconds = 0.8

    def supports(self, request: SimulationRequest) -> bool:
        return request.seed_keys[:1] == (_SLOW_KEY,)

    def run(self, request, trial_indices=None):
        time.sleep(self.seconds)
        count = (
            request.n_trials if trial_indices is None else len(trial_indices)
        )
        return tuple(
            SearchOutcome(
                found=False, m_moves=None, m_steps=None, finder=None,
                n_agents=request.n_agents, move_budget=request.move_budget,
            )
            for _ in range(count)
        )


def _slow_request(**overrides):
    overrides.setdefault("seed_keys", (_SLOW_KEY,))
    return _request(**overrides)


def _ensure_slow_backend() -> None:
    try:
        register_backend(_SlowBackend())
    except Exception:
        pass  # already registered by an earlier test in this process


# Register at import (collection) time: the shared manager's worker
# pool forks during test *execution*, which always comes after
# collection, so every worker process inherits the slow backend.
_ensure_slow_backend()


@pytest.fixture(scope="module")
def server():
    """One shared server on an ephemeral port for the module."""
    app_module = pytest.importorskip("repro.server.app")
    with app_module.SimulationServer(port=0, max_jobs=4) as instance:
        yield instance


@pytest.fixture
def client(server):
    return RemoteClient(server.url, backoff_seconds=0.05)


class TestRemoteLocalEquivalence:
    def test_fixed_seed_remote_equals_local_multi_shard(self, client):
        """The headline guarantee, over a real socket with sharding."""
        request = _request()
        local = simulate(request, backend="closed_form", cache=False)
        remote = client.simulate(
            request, backend="closed_form", workers=2, cache=False
        )
        assert remote.outcomes == local.outcomes
        assert remote.request == request
        assert remote.backend == "closed_form"

    def test_remote_simulate_async_mirror(self, client):
        request = _request(seed=7, n_trials=3)
        local = simulate(request, backend="closed_form", cache=False)
        job = client.simulate_async(request, backend="closed_form", cache=False)
        assert job.result().outcomes == local.outcomes
        assert job.done()

    def test_cached_submission_streams_from_cache(self, client):
        """A resubmitted request is served by the result cache."""
        request = _request(seed=99, n_trials=2)
        client.simulate(request, backend="closed_form", cache=True)
        job = client.submit(request, backend="closed_form", cache=True)
        shards = list(job.iter_results())
        assert shards and all(shard.from_cache for shard in shards)


class TestSSEStream:
    def test_every_shard_delivered_in_order(self, client):
        """A 3-shard job streams 3 shard events tiling all trials."""
        request = _request(seed=31337)
        job = client.submit(
            request, backend="closed_form", workers=3, cache=False
        )
        events = []
        response = client._open(
            "GET", f"/v1/jobs/{job.job_id}/events", stream=True
        )
        from repro.server.client import _iter_sse

        with response:
            for event, data, event_id in _iter_sse(response):
                events.append((event, data, int(event_id)))

        kinds = [kind for kind, _, _ in events]
        assert kinds[0] == "progress"
        assert kinds[-1] == "done"
        ids = [event_id for _, _, event_id in events]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

        shards = [data for kind, data, _ in events if kind == "shard"]
        assert len(shards) == 3
        covered = sorted(
            (shard["trial_start"], shard["trial_count"]) for shard in shards
        )
        tiled = []
        for start, count in covered:
            tiled.extend(range(start, start + count))
        assert tiled == list(range(request.n_trials))
        assert {shard["shard_index"] for shard in shards} == {0, 1, 2}

    def test_iter_results_reconstructs_shard_objects(self, client):
        request = _request(seed=555, n_trials=4)
        job = client.submit(
            request, backend="closed_form", workers=2, cache=False
        )
        shards = list(job.iter_results())
        outcomes = [
            outcome
            for shard in sorted(shards, key=lambda s: s.trial_start)
            for outcome in shard.outcomes
        ]
        local = simulate(request, backend="closed_form", cache=False)
        assert tuple(outcomes) == local.outcomes


class TestConcurrencyLimit:
    def test_429_retry_after_and_backoff_completion(self):
        """Beyond max_jobs: 429 + Retry-After; backoff completes."""
        _ensure_slow_backend()
        from repro.server.app import SimulationServer

        with SimulationServer(port=0, max_jobs=1) as server:
            patient = RemoteClient(server.url, backoff_seconds=0.05)
            blocker = patient.submit(
                _slow_request(seed=1, n_trials=1), backend="slowtest", cache=False
            )

            # A no-retry client sees the rejection and its Retry-After.
            impatient = RemoteClient(server.url, max_attempts=1)
            with pytest.raises(RemoteServerError) as excinfo:
                impatient.submit(
                    _slow_request(seed=2, n_trials=1),
                    backend="slowtest",
                    cache=False,
                )
            assert excinfo.value.status == 429

            import json as json_module
            import urllib.error
            import urllib.request

            from repro.server.wire import request_to_wire

            raw = urllib.request.Request(
                f"{server.url}/v1/jobs",
                data=json_module.dumps(
                    {
                        "wire": 1,
                        "request": request_to_wire(
                            _slow_request(seed=3, n_trials=1)
                        ),
                        "backend": "slowtest",
                        "cache": False,
                    }
                ).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as http_excinfo:
                urllib.request.urlopen(raw, timeout=10)
            assert http_excinfo.value.code == 429
            assert float(http_excinfo.value.headers["Retry-After"]) > 0
            http_excinfo.value.close()

            # The backing-off client absorbs the 429s and completes.
            job = patient.submit(
                _slow_request(seed=4, n_trials=1), backend="slowtest", cache=False
            )
            result = job.result(timeout=30)
            assert len(result.outcomes) == 1
            assert patient.retries_429 >= 1
            assert blocker.result(timeout=30) is not None

            stats = patient.stats()
            assert stats["rejected_429"] >= 2

    def test_sweeps_count_against_the_admission_limit(self):
        """POST /v1/sweeps is admission-controlled like /v1/jobs."""
        from repro.server.app import SimulationServer

        with SimulationServer(port=0, max_jobs=1) as server:
            client = RemoteClient(server.url)
            client.submit(
                _slow_request(seed=6, n_trials=1),
                backend="slowtest",
                cache=False,
            )
            impatient = RemoteClient(server.url, max_attempts=1)
            with pytest.raises(RemoteServerError) as excinfo:
                impatient.submit_sweep(
                    _request(n_trials=1),
                    [{"n_agents": 1}],
                    trials=1,
                    seed=0,
                    backend="closed_form",
                )
            assert excinfo.value.status == 429


class TestStatusAndLedgerFallback:
    def test_status_falls_back_to_ledger_after_eviction(self, server, client):
        """A finished job evicted from the registry still answers."""
        request = _request(seed=2718, n_trials=2)
        job = client.submit(request, backend="closed_form", cache=False)
        job.result()
        job_id = job.job_id
        assert client._call("GET", f"/v1/jobs/{job_id}")[1]["source"] == "live"

        # The driver's final ledger write lands just after result()
        # unblocks; wait for the record to settle before evicting.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            record = find_job_record(job_id)
            if record is not None and record.get("state") == "done":
                break
            time.sleep(0.02)

        # Evict the handle from the manager registry and the server's
        # own index, simulating MAX_RETAINED_JOBS turnover.
        manager = get_manager()
        with manager._lock:
            manager._jobs.pop(job_id, None)
        with server._lock:
            server._jobs.pop(job_id, None)

        status = client._call("GET", f"/v1/jobs/{job_id}")[1]
        assert status["source"] == "ledger"
        assert status["state"] == "done"
        assert status["progress"]["done_trials"] == request.n_trials

        # The CLI helper behind `repro-ants jobs status` does the same.
        record = job_status_record(job_id)
        assert record is not None and record["state"] == "done"

    def test_unknown_job_404(self, client):
        with pytest.raises(RemoteServerError) as excinfo:
            client._call("GET", "/v1/jobs/job-does-not-exist")
        assert excinfo.value.status == 404

    def test_list_jobs_route(self, client):
        request = _request(seed=11, n_trials=1)
        job = client.submit(request, backend="closed_form", cache=False)
        job.result()
        listed = client.jobs()
        assert any(entry["job_id"] == job.job_id for entry in listed)


class TestCancellation:
    def test_delete_cancels_running_job(self):
        """Cancellation is honored at shard boundaries of a pooled job."""
        from repro.server.app import SimulationServer

        with SimulationServer(port=0, max_jobs=4) as server:
            client = RemoteClient(server.url)
            # Two pooled shards of 0.8s each: the DELETE lands while
            # they run, and the driver settles the job CANCELLED.
            job = client.submit(
                _slow_request(seed=5, n_trials=4),
                backend="slowtest",
                workers=2,
                cache=False,
            )
            assert job.cancel()
            with pytest.raises(JobCancelledError):
                job.result(timeout=30)
            assert job.state is JobState.CANCELLED

    def test_cancel_unknown_job_404(self, client):
        with pytest.raises(RemoteServerError) as excinfo:
            client._call("DELETE", "/v1/jobs/job-nope")
        assert excinfo.value.status == 404


class TestSweeps:
    def test_remote_sweep_rows_equal_local(self, client):
        template = _request(n_agents=1, n_trials=1)
        grid = [{"n_agents": 1}, {"n_agents": 2}, {"n_agents": 4}]

        def factory(params):
            return replace(template, n_agents=params["n_agents"])

        local_rows = Sweep(
            SimulationTrial(
                factory=factory, backend="closed_form", cache=False
            ),
            grid=grid,
            trials=3,
            seed=77,
        ).run()

        sweep = client.submit_sweep(
            template,
            grid,
            trials=3,
            seed=77,
            backend="closed_form",
            cache=False,
        )
        rows = sweep.result(timeout=120)
        assert [row["params"] for row in rows] == grid
        assert [row["estimate"]["mean"] for row in rows] == [
            row.estimate.mean for row in local_rows
        ]

    def test_evicted_sweep_status_is_retained(self, server, client):
        """A finished sweep evicted from the handle map still answers
        with its final rows (the sweep-side ledger analogue)."""
        sweep = client.submit_sweep(
            _request(n_trials=1),
            [{"n_agents": 1}],
            trials=2,
            seed=41,
            backend="closed_form",
            cache=False,
        )
        rows = sweep.result(timeout=60)
        with server._lock:
            handle = server._sweeps.pop(sweep.sweep_id)
            server._sweep_records[sweep.sweep_id] = (
                server._sweep_status_payload(sweep.sweep_id, handle)
            )
        status = sweep.status()
        assert status["state"] == "done"
        assert status["rows"] == rows

    def test_sweep_sse_rows_in_grid_order(self, client):
        template = _request(n_agents=1, n_trials=1)
        sweep = client.submit_sweep(
            template,
            [{"n_agents": 1}, {"n_agents": 2}],
            trials=2,
            seed=5,
            backend="closed_form",
            cache=False,
        )
        indices = [index for index, _ in sweep.iter_rows()]
        assert indices == [0, 1]

    def test_bad_grid_key_rejected(self, client):
        with pytest.raises(RemoteServerError) as excinfo:
            client.submit_sweep(
                _request(), [{"warp_speed": 9}], trials=1, seed=0
            )
        assert excinfo.value.status == 400

    @pytest.mark.parametrize(
        "point", [{"move_budget": "big"}, {"n_agents": 2.5}, {"ell": "one"}]
    )
    def test_non_integer_grid_value_is_a_400(self, client, point):
        """Malformed override values fail the submission, not the
        background driver (and never as a 500)."""
        with pytest.raises(RemoteServerError) as excinfo:
            client.submit_sweep(_request(), [point], trials=1, seed=0)
        assert excinfo.value.status == 400

    def test_workers_clamped_to_server_cap(self, client, server):
        """A huge remote workers value is clamped to the server's
        per-job cap instead of growing the process pool unboundedly."""
        request = _request(seed=90210, n_trials=20)
        local = simulate(request, backend="closed_form", cache=False)
        job = client.submit(
            request, backend="closed_form", workers=4096, cache=False
        )
        result = job.result()
        assert result.outcomes == local.outcomes
        assert job.progress()["total_shards"] <= server.max_workers_per_job


class TestIntrospectionRoutes:
    def test_backends_route(self, client):
        payload = client.backends()
        assert {"reference", "closed_form", "batched", "accelerator"} <= set(
            payload["backends"]
        )
        assert payload["auto_resolution"]["algorithm1"] is not None
        assert "numpy" in payload["kernel_namespaces"]

    def test_backends_route_reports_decline_reasons(self, client):
        """Declines carry the supports() gating reason over the wire."""
        payload = client.backends()
        batched = payload["backends"]["batched"]
        assert "kernel" in batched["declines"]["spiral"]
        accelerator = payload["backends"]["accelerator"]
        assert "device" in accelerator
        if not accelerator["algorithms"]["algorithm1"]:
            # CPU-only host: every family declines with the probe's
            # device reason, and the binding summary explains itself.
            assert accelerator["declines"]["algorithm1"]
        # Reference supports everything -> no decline entries at all.
        assert payload["backends"]["reference"]["declines"] == {}

    def test_stats_route_includes_cache_counters(self, client):
        request = _request(seed=8080, n_trials=2)
        client.simulate(request, backend="closed_form", workers=2, cache=True)
        client.simulate(request, backend="closed_form", workers=2, cache=True)
        stats = client.stats()
        cache = stats["cache"]
        for key in (
            "hits_memory", "hits_disk", "misses", "stores",
            "hits_shard", "misses_shard", "stores_shard",
        ):
            assert key in cache
        assert stats["jobs_submitted"] >= 1
        assert stats["max_jobs"] == 4
        assert stats["requests_total"] >= 1

    def test_malformed_body_400(self, client):
        with pytest.raises(RemoteServerError) as excinfo:
            client._call("POST", "/v1/jobs", payload={"wire": 1})
        assert excinfo.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(RemoteServerError) as excinfo:
            client._call("GET", "/v2/jobs")
        assert excinfo.value.status == 404

    def test_keep_alive_survives_an_error_response(self, server):
        """An error sent before the body was read must not desync the
        connection: the unread body would otherwise be parsed as the
        next request line on a keep-alive socket."""
        import http.client
        import json as json_module

        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            body = json_module.dumps({"x": 1})
            connection.request(
                "POST", "/v1/nope", body=body,
                headers={"Content-Type": "application/json"},
            )
            first = connection.getresponse()
            assert first.status == 404
            first.read()
            # Same connection: the next request must parse cleanly.
            connection.request("GET", "/v1/health")
            second = connection.getresponse()
            assert second.status == 200
            assert json_module.loads(second.read())["status"] == "ok"
        finally:
            connection.close()
