"""Chaos suite: fault injection against the full stack.

Pins the ISSUE's resilience acceptance criteria end to end:

* **worker kill** — a pool worker killed mid-shard (``os._exit``)
  breaks the executor for every in-flight sibling; the job rebuilds
  the pool, retries, and completes **bit-identical** to an unfaulted
  run with **zero duplicate simulation**: the backend-run counter
  advances by exactly the shard count;
* **corrupt cache entry** — a disk entry corrupted at write time is
  quarantined on the next lookup and transparently re-simulated,
  bit-identical;
* **device loss** — a backend reporting device loss mid-job degrades
  onto the selector's fallback and the final result is bit-identical
  to a run on that fallback from the start;
* **severed SSE stream** — a connection reset mid-stream resumes via
  ``Last-Event-ID`` with no duplicated and no missing shard events;
* **idempotent submission** — a POST retried after a connection error
  replays the originally admitted job instead of duplicating it.

Every fault is a seeded :class:`~repro.resilience.faults.FaultPlan`
rule, so each scenario is exactly reproducible.  Pool-targeting tests
use a private :class:`~repro.sim.jobs.JobManager` whose workers are
forked *after* ``activate()`` and therefore inherit the plan through
the environment.
"""

from __future__ import annotations

import pytest

import repro.sim.cache as cache_module
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    activate,
    deactivate,
)
from repro.server.client import RemoteClient
from repro.server.wire import WIRE_VERSION, request_to_wire
from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.cache import configure_cache
from repro.sim.jobs import JobManager
from repro.sim.service import backend_run_count


def _request(**overrides) -> SimulationRequest:
    fields = dict(
        algorithm=AlgorithmSpec.algorithm1(8),
        n_agents=2,
        target=(6, 4),
        move_budget=200_000,
        n_trials=8,
        seed=20260808,
    )
    fields.update(overrides)
    return SimulationRequest(**fields)


@pytest.fixture
def fresh_cache(tmp_path):
    cache = configure_cache(directory=tmp_path, max_memory_entries=64)
    cache.clear()
    yield cache
    configure_cache(
        directory=cache_module.default_cache_dir(), max_memory_entries=256
    )


@pytest.fixture(autouse=True)
def no_leftover_faults():
    deactivate()
    yield
    deactivate()


@pytest.fixture(scope="module")
def server():
    app_module = pytest.importorskip("repro.server.app")
    with app_module.SimulationServer(port=0, max_jobs=4) as instance:
        yield instance


@pytest.fixture
def client(server):
    return RemoteClient(server.url, backoff_seconds=0.05)


class TestWorkerKill:
    def test_killed_worker_completes_bit_identical_zero_resim(
        self, fresh_cache
    ):
        """The headline chaos guarantee.

        Killing the worker running shard 2 breaks the pool for every
        in-flight sibling at once.  The job must still settle on the
        unfaulted outcomes, and the backend-run counter must advance
        by exactly the shard count: shards recorded before the break
        are never re-run, and every retried shard is counted once.
        """
        request = _request()
        reference = simulate(request, backend="closed_form", cache=False)
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.shard",
                        kind="kill",
                        # attempt=0 so the retry (attempt 1) survives;
                        # the replacement worker's counters start fresh.
                        match={"shard_index": 2, "attempt": 0},
                    ),
                )
            )
        )
        manager = JobManager()
        try:
            before = backend_run_count()
            job = manager.submit(
                request, backend="closed_form", workers=4, cache=True
            )
            result = job.result(timeout=120)
        finally:
            deactivate()
            manager.close()
        assert result.outcomes == reference.outcomes
        assert job._retries >= 1  # at least the killed shard retried
        # Zero duplicate simulation: 4 shards, 4 recorded executions —
        # despite the kill and the broken-pool retries around it.
        assert backend_run_count() == before + 4


class TestCorruptCacheEntry:
    def test_corrupted_disk_entry_is_quarantined_and_resimulated(
        self, fresh_cache, tmp_path
    ):
        request = _request(n_trials=4)
        # The fault corrupts the bytes as they hit disk; the in-memory
        # result the first run returns is untouched.
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="cache.disk_write",
                        kind="corrupt",
                        match={"level": "entry"},
                    ),
                )
            )
        )
        original = simulate(request, backend="closed_form", cache=True)
        deactivate()
        # A fresh cache instance over the same directory: empty memory,
        # so the lookup must go to the corrupted disk entry.
        cache = configure_cache(directory=tmp_path, max_memory_entries=64)
        before_runs = backend_run_count()
        replay = simulate(request, backend="closed_form", cache=True)
        assert replay.outcomes == original.outcomes
        assert backend_run_count() == before_runs + 1  # re-simulated
        assert cache.info().quarantined >= 1


class TestDeviceLoss:
    def test_pooled_device_loss_degrades_bit_identical(self, fresh_cache):
        request = _request(n_trials=4)
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.shard",
                        kind="device_lost",
                        match={"backend": "closed_form", "attempt": 0},
                    ),
                )
            )
        )
        manager = JobManager()
        try:
            job = manager.submit(
                request, backend="closed_form", workers=2, cache=False
            )
            result = job.result(timeout=120)
        finally:
            deactivate()
            manager.close()
        assert job._degraded_from == "closed_form"
        assert job.backend != "closed_form"
        assert job._degradation_reason
        # The delivered stream is wholly the fallback's: identical to a
        # run that used it from the start with the same shard layout,
        # whichever backend the selector picked.  (Batch backends are
        # deterministic per shard shape, not across shapes, so the
        # reference must share the worker count.)
        reference_manager = JobManager()
        try:
            fallback = reference_manager.submit(
                request, backend=job.backend, workers=2, cache=False
            ).result(timeout=120)
        finally:
            reference_manager.close()
        assert result.outcomes == fallback.outcomes
        assert result.backend == fallback.backend


class TestSeveredEventStream:
    def test_sse_resumes_after_connection_reset(self, client, server):
        """The reset fires as event id 2 is written; the client must
        reconnect with ``Last-Event-ID`` and see one seamless,
        duplicate-free sequence."""
        request = _request(seed=777, n_trials=6)
        local = simulate(request, backend="closed_form", cache=False)
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="server.sse",
                        kind="reset",
                        match={"event_index": 2},
                        max_fires=1,
                    ),
                )
            )
        )
        job = client.submit(
            request, backend="closed_form", workers=3, cache=False
        )
        shards = list(job.iter_results())
        assert client.retries_stream == 1
        # Every shard delivered exactly once across the two connections.
        assert sorted(shard.shard_index for shard in shards) == [0, 1, 2]
        outcomes = [
            outcome
            for shard in sorted(shards, key=lambda s: s.trial_start)
            for outcome in shard.outcomes
        ]
        assert tuple(outcomes) == local.outcomes

    def test_unfaulted_stream_needs_no_resume(self, client):
        request = _request(seed=778, n_trials=4)
        job = client.submit(
            request, backend="closed_form", workers=2, cache=False
        )
        assert len(list(job.iter_results())) == 2
        assert client.retries_stream == 0


class TestIdempotentSubmission:
    def _payload(self, request, key):
        return {
            "wire": WIRE_VERSION,
            "request": request_to_wire(request),
            "backend": "closed_form",
            "workers": 1,
            "cache": False,
            "idempotency_key": key,
        }

    def test_duplicate_key_replays_the_admitted_job(self, client):
        request = _request(seed=779, n_trials=2)
        payload = self._payload(request, "chaos-fixed-key-jobs")
        _, first = client._call(
            "POST", "/v1/jobs", payload=payload, idempotent=True
        )
        _, second = client._call(
            "POST", "/v1/jobs", payload=payload, idempotent=True
        )
        assert second["job_id"] == first["job_id"]
        assert second.get("idempotent_replay") is True
        assert not first.get("idempotent_replay")

    def test_duplicate_sweep_key_replays_the_admitted_sweep(self, client):
        template = _request(seed=780, n_trials=1)
        payload = {
            "wire": WIRE_VERSION,
            "template": request_to_wire(template),
            "grid": [{"n_agents": 1}, {"n_agents": 2}],
            "trials": 2,
            "seed": 7,
            "seed_keys": [],
            "backend": "closed_form",
            "workers": 1,
            "cache": False,
            "idempotency_key": "chaos-fixed-key-sweeps",
        }
        _, first = client._call(
            "POST", "/v1/sweeps", payload=payload, idempotent=True
        )
        _, second = client._call(
            "POST", "/v1/sweeps", payload=payload, idempotent=True
        )
        assert second["sweep_id"] == first["sweep_id"]
        assert second.get("idempotent_replay") is True

    def test_post_retried_after_connection_reset(self, client):
        """The reset fires before the first POST leaves the client, so
        the retry is the submission that lands — and it must succeed
        end to end."""
        request = _request(seed=781, n_trials=2)
        local = simulate(request, backend="closed_form", cache=False)
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="client.http",
                        kind="reset",
                        match={
                            "method": "POST",
                            "path": "/v1/jobs",
                            "attempt": 0,
                        },
                        max_fires=1,
                    ),
                )
            )
        )
        job = client.submit(request, backend="closed_form", cache=False)
        deactivate()
        assert client.retries_connect == 1
        assert job.result(timeout=60).outcomes == local.outcomes
