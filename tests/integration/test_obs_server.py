"""Trace stitching and metrics exposition over a real socket.

The observability acceptance criteria from the ISSUE:

* a remote submission produces ONE trace spanning both processes —
  the client's ``client.submit`` span is an ancestor of the server's
  ``server.request`` and ``job`` spans, which in turn parent the
  shard and kernel spans (here client and server share a process but
  the context still travels the HTTP ``traceparent`` header, which is
  the thing under test);
* ``GET /v1/jobs/{id}/trace`` serves the stitched span payloads;
* ``GET /v1/metrics`` is Prometheus text exposing cache, job, kernel
  throughput, and per-route latency series;
* ``GET /v1/stats`` carries the cache hit ratios and the JSON metrics
  snapshot.
"""

from __future__ import annotations

import time
import urllib.request

import pytest

from repro.obs.trace import Span, clear_ring, configure_tracing, ring_spans
from repro.server.app import SimulationServer
from repro.server.client import RemoteClient
from repro.sim import AlgorithmSpec, SimulationRequest


def _request(**overrides) -> SimulationRequest:
    fields = dict(
        algorithm=AlgorithmSpec.algorithm1(8),
        n_agents=4,
        target=(8, 8),
        move_budget=300_000,
        n_trials=6,
        seed=711,
    )
    fields.update(overrides)
    return SimulationRequest(**fields)


@pytest.fixture
def server():
    configure_tracing(enabled=True)
    clear_ring()
    with SimulationServer(port=0, max_jobs=4) as instance:
        yield instance


def _wait_for_span(trace_id: str, name: str, timeout: float = 2.0):
    """The driver thread records job/shard spans shortly *after*
    ``result()`` unblocks; poll instead of racing it."""
    from repro.obs.trace import spans_for_trace

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = spans_for_trace(trace_id)
        if any(sp.name == name for sp in spans):
            return spans
        time.sleep(0.02)
    return spans_for_trace(trace_id)


class TestTraceStitching:
    def test_client_span_is_ancestor_of_server_job_and_shards(self, server):
        client = RemoteClient(server.url)
        job = client.submit(
            _request(seed=712), backend="auto", workers=3, cache=False
        )
        job.result(timeout=60)
        submit_span = next(
            sp for sp in ring_spans() if sp.name == "client.submit"
        )
        spans = _wait_for_span(submit_span.trace_id, "job")
        by_id = {sp.span_id: sp for sp in spans}
        by_name = {}
        for sp in spans:
            by_name.setdefault(sp.name, []).append(sp)

        # client.submit -> server.request -> job: one unbroken chain.
        (request_span,) = by_name["server.request"]
        assert request_span.parent_id == submit_span.span_id
        (job_span,) = by_name["job"]
        assert job_span.parent_id == request_span.span_id
        assert job_span.attributes["job_id"] == job.job_id

        # >= 2 shards under the job span, each with a kernel child.
        shards = by_name["shard"]
        assert len(shards) >= 2
        assert {sp.parent_id for sp in shards} == {job_span.span_id}
        kernels = by_name["kernel.algorithm1"]
        assert {sp.parent_id for sp in kernels} <= {
            sp.span_id for sp in shards
        }
        # Every span carries a finished duration in one shared trace.
        assert {sp.trace_id for sp in spans} == {submit_span.trace_id}
        assert all(sp.duration is not None and sp.duration >= 0
                   for sp in spans)

    def test_trace_route_serves_the_stitched_spans(self, server):
        client = RemoteClient(server.url)
        job = client.submit(
            _request(seed=713), backend="auto", workers=2, cache=False
        )
        job.result(timeout=60)
        submit_span = next(
            sp for sp in ring_spans() if sp.name == "client.submit"
        )
        _wait_for_span(submit_span.trace_id, "job")
        trace_id, payloads = job.trace()
        assert trace_id == submit_span.trace_id
        spans = [Span.from_payload(payload) for payload in payloads]
        names = {sp.name for sp in spans}
        assert {"job", "shard"} <= names

    def test_unknown_job_trace_is_404(self, server):
        client = RemoteClient(server.url)
        with urllib.request.urlopen(
            f"{server.url}/v1/health"
        ) as response:
            assert response.status == 200
        from repro.server.client import RemoteJob, RemoteServerError

        ghost = RemoteJob(client, "job-doesnotexist00")
        with pytest.raises(RemoteServerError) as excinfo:
            ghost.trace()
        assert excinfo.value.status == 404


class TestMetricsExposition:
    def test_prometheus_text_covers_the_pipeline(self, server):
        client = RemoteClient(server.url)
        request = _request(seed=714, n_trials=4)
        client.simulate(request, backend="auto", cache=True)
        client.simulate(request, backend="auto", cache=True)  # cache hit
        time.sleep(0.2)  # job-completion metrics land post-result
        text = client.metrics()
        assert "# TYPE repro_http_requests_total counter" in text
        assert '{route="/v1/jobs",method="POST",status="201"}' in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_request_seconds_bucket{route="/v1/jobs",le="+Inf"}' in text
        assert "repro_jobs_submitted_total" in text
        assert "repro_cache_lookups_total" in text
        assert 'outcome="miss"' in text
        # The re-run was served from cache: a hit outcome must appear.
        assert ('outcome="hit_memory"' in text
                or 'outcome="hit_disk"' in text)
        assert "repro_sim_colonies_total" in text

    def test_stats_payload_carries_ratios_and_metrics(self, server):
        client = RemoteClient(server.url)
        request = _request(seed=715, n_trials=2)
        client.simulate(request, backend="auto", cache=True)
        client.simulate(request, backend="auto", cache=True)
        payload = client.stats()
        cache_payload = payload["cache"]
        assert cache_payload["hit_ratio"] is not None
        assert 0.0 < cache_payload["hit_ratio"] <= 1.0
        metrics = payload["metrics"]
        assert metrics["repro_http_requests_total"]["type"] == "counter"
        assert any(
            value["labels"].get("route") == "/v1/jobs"
            for value in metrics["repro_http_requests_total"]["values"]
        )

    def test_client_retry_counters_reach_the_registry(self, server):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        retries = registry.counter(
            "repro_client_retries_total",
            "Remote client retries absorbed by backoff, by kind.",
            ["kind"],
        )
        before = retries.value(kind="connect")
        # No server listens on this port: connect retries then fail.
        from repro.server.client import RemoteClient as RC
        from repro.server.client import RemoteServerError

        dead = RC("http://127.0.0.1:9", max_attempts=3,
                  backoff_seconds=0.0, sleep=lambda _s: None)
        with pytest.raises(RemoteServerError):
            dead.health()
        assert dead.retries_connect == 2
        assert retries.value(kind="connect") == before + 2
