"""Equivalence and behaviour tests for the doubly uniform fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.doubly_uniform import DoublyUniformSearch
from repro.core.uniform import calibrated_K
from repro.errors import InvalidParameterError
from repro.grid.world import GridWorld
from repro.sim.engine import EngineConfig, SearchEngine
from repro.sim.fast import fast_doubly_uniform


class TestFastDoublyUniform:
    def test_finds_close_target(self, rng):
        outcome = fast_doubly_uniform(
            4, 1, calibrated_K(1), (3, 2), rng, 10_000_000
        )
        assert outcome.found

    def test_budget_respected(self, rng):
        outcome = fast_doubly_uniform(1, 1, 2, (60, 60), rng, move_budget=100)
        assert not outcome.found

    def test_origin_target(self, rng):
        assert fast_doubly_uniform(1, 1, 2, (0, 0), rng, 10).m_moves == 0

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            fast_doubly_uniform(0, 1, 2, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            fast_doubly_uniform(1, 0, 2, (1, 1), rng, 10)
        with pytest.raises(InvalidParameterError):
            fast_doubly_uniform(1, 1, 2, (1, 1), rng, 0)

    def test_matches_engine_distributionally(self, rng_factory):
        """Engine (faithful process) vs fast path: mean agreement."""
        K = calibrated_K(1)
        target = (3, 3)
        budget = 3_000_000
        trials = 80
        n_agents = 2

        engine = SearchEngine(EngineConfig(move_budget=budget))
        algorithm = DoublyUniformSearch(ell=1, K=K)
        engine_samples = []
        for trial in range(trials):
            world = GridWorld(target=target, distance_bound=8)
            outcome = engine.run(
                algorithm, n_agents, world,
                rng=np.random.SeedSequence([61, trial]),
            )
            engine_samples.append(float(outcome.moves_or_budget))

        generator = rng_factory(62)
        fast_samples = [
            float(
                fast_doubly_uniform(n_agents, 1, K, target, generator, budget)
                .moves_or_budget
            )
            for _ in range(trials)
        ]
        assert np.mean(engine_samples) == pytest.approx(
            np.mean(fast_samples), rel=0.3
        )

    def test_unknown_n_costs_more_than_known_n(self, rng_factory):
        """The [12]-style lift pays a bounded premium over Algorithm 5."""
        from repro.sim.fast import fast_uniform

        K = calibrated_K(1)
        target = (6, 5)
        budget = 20_000_000
        trials = 60
        n_agents = 4

        generator = rng_factory(63)
        known = np.mean(
            [
                fast_uniform(n_agents, 1, K, target, generator, budget)
                .moves_or_budget
                for _ in range(trials)
            ]
        )
        generator = rng_factory(64)
        unknown = np.mean(
            [
                fast_doubly_uniform(n_agents, 1, K, target, generator, budget)
                .moves_or_budget
                for _ in range(trials)
            ]
        )
        # The doubly uniform variant re-runs earlier phases per epoch;
        # the premium must exist but stay within a polylog-ish factor.
        assert unknown <= 50 * known
        assert unknown >= 0.2 * known
