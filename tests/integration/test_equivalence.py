"""Cross-form equivalence: process vs automaton vs vectorized simulators.

The same algorithm exists as pseudocode-style generator, explicit
automaton, and closed-form fast simulator; these tests check the three
produce statistically indistinguishable behaviour, which is the
foundation the benchmark sweeps stand on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Action
from repro.core.algorithm1 import Algorithm1, build_algorithm1_automaton
from repro.core.automaton import AutomatonAlgorithm
from repro.core.nonuniform import NonUniformSearch
from repro.core.uniform import UniformSearch, calibrated_K
from repro.grid.world import GridWorld
from repro.sim.engine import EngineConfig, SearchEngine
from repro.sim.fast import fast_algorithm1, fast_nonuniform, fast_uniform
from repro.sim.rng import spawn_generators


def engine_mean_moves(algorithm, n_agents, target, budget, trials, seed):
    engine = SearchEngine(EngineConfig(move_budget=budget))
    samples = []
    for trial in range(trials):
        world = GridWorld(target=target, distance_bound=64)
        outcome = engine.run(
            algorithm, n_agents, world, rng=np.random.SeedSequence([seed, trial])
        )
        samples.append(outcome.moves_or_budget)
    return float(np.mean(samples))


class TestProcessVsFast:
    def test_algorithm1_engine_matches_fast(self, rng_factory):
        distance, n_agents, target = 8, 2, (5, 3)
        budget = 500_000
        trials = 250
        via_engine = engine_mean_moves(
            Algorithm1(distance), n_agents, target, budget, trials, 1
        )
        generator = rng_factory(2)
        via_fast = np.mean(
            [
                fast_algorithm1(distance, n_agents, target, generator, budget)
                .moves_or_budget
                for _ in range(trials)
            ]
        )
        assert via_engine == pytest.approx(via_fast, rel=0.2)

    def test_nonuniform_engine_matches_fast(self, rng_factory):
        distance, n_agents, target = 8, 2, (4, -2)
        budget = 500_000
        trials = 250
        via_engine = engine_mean_moves(
            NonUniformSearch(distance, 1), n_agents, target, budget, trials, 3
        )
        generator = rng_factory(4)
        via_fast = np.mean(
            [
                fast_nonuniform(distance, 1, n_agents, target, generator, budget)
                .moves_or_budget
                for _ in range(trials)
            ]
        )
        assert via_engine == pytest.approx(via_fast, rel=0.2)

    def test_uniform_engine_matches_fast(self, rng_factory):
        n_agents, target = 2, (3, 3)
        K = calibrated_K(1)
        budget = 2_000_000
        trials = 120
        via_engine = engine_mean_moves(
            UniformSearch(n_agents, 1, K), n_agents, target, budget, trials, 5
        )
        generator = rng_factory(6)
        via_fast = np.mean(
            [
                fast_uniform(n_agents, 1, K, target, generator, budget)
                .moves_or_budget
                for _ in range(trials)
            ]
        )
        assert via_engine == pytest.approx(via_fast, rel=0.25)


class TestProcessVsAutomaton:
    def test_algorithm1_move_distribution_matches_automaton(self, rng_factory):
        """Iteration lengths and direction mix agree across forms."""
        distance = 6
        trials = 4000

        def iteration_lengths(algorithm, seed):
            generator = rng_factory(seed)
            process = algorithm.process(generator)
            lengths = []
            current = 0
            while len(lengths) < trials:
                action = next(process)
                if action is Action.ORIGIN:
                    lengths.append(current)
                    current = 0
                elif action.is_move:
                    current += 1
            return lengths

        process_lengths = iteration_lengths(Algorithm1(distance), 7)
        automaton_lengths = iteration_lengths(
            AutomatonAlgorithm(build_algorithm1_automaton(distance)), 8
        )
        assert np.mean(process_lengths) == pytest.approx(
            np.mean(automaton_lengths), rel=0.08
        )
        assert np.std(process_lengths) == pytest.approx(
            np.std(automaton_lengths), rel=0.15
        )

    def test_automaton_engine_finds_targets_like_process_engine(self):
        distance, target = 8, (3, 2)
        budget = 300_000
        trials = 150
        via_process = engine_mean_moves(
            Algorithm1(distance), 2, target, budget, trials, 9
        )
        via_automaton = engine_mean_moves(
            AutomatonAlgorithm(build_algorithm1_automaton(distance)),
            2,
            target,
            budget,
            trials,
            10,
        )
        assert via_process == pytest.approx(via_automaton, rel=0.25)

    def test_nonuniform_product_automaton_matches_process(self):
        """Theorem 3.7's machine: same move behaviour as the pseudocode."""
        distance, target = 8, (2, 2)
        budget = 400_000
        trials = 150
        algorithm = NonUniformSearch(distance, 1)
        via_process = engine_mean_moves(algorithm, 2, target, budget, trials, 11)
        via_automaton = engine_mean_moves(
            AutomatonAlgorithm(algorithm.automaton()), 2, target, budget, trials, 12
        )
        assert via_process == pytest.approx(via_automaton, rel=0.25)


class TestDistributionalEquivalence:
    def test_fast_and_engine_move_distributions_ks_close(self, rng_factory):
        """Full-distribution check (KS), stronger than matching means."""
        from repro.sim.stats import ks_statistic, ks_two_sample_threshold

        distance, n_agents, target = 8, 2, (5, 3)
        budget = 500_000
        trials = 400

        engine = SearchEngine(EngineConfig(move_budget=budget))
        engine_samples = []
        for trial in range(trials):
            world = GridWorld(target=target, distance_bound=64)
            outcome = engine.run(
                Algorithm1(distance),
                n_agents,
                world,
                rng=np.random.SeedSequence([41, trial]),
            )
            engine_samples.append(float(outcome.moves_or_budget))

        generator = rng_factory(42)
        fast_samples = [
            float(
                fast_algorithm1(distance, n_agents, target, generator, budget)
                .moves_or_budget
            )
            for _ in range(trials)
        ]
        distance_ks = ks_statistic(engine_samples, fast_samples)
        # alpha = 0.001: flake-resistant while still sensitive to any
        # systematic distribution mismatch at these sample sizes.
        assert distance_ks <= ks_two_sample_threshold(trials, trials, alpha=0.001)


class TestColonyVsEngine:
    def test_vectorized_colony_matches_engine_for_automata(self, rng):
        """The lower-bound colony simulator agrees with the engine."""
        from repro.lowerbound.colony import simulate_colony
        from repro.markov.random_automata import uniform_walk_automaton

        automaton = uniform_walk_automaton()
        target = (2, 1)
        rounds = 4000
        trials = 60

        colony_rates = []
        for trial in range(trials):
            result = simulate_colony(
                automaton, 4, rounds, np.random.default_rng(100 + trial),
                window_radius=8, target=target,
            )
            colony_rates.append(result.found)

        engine = SearchEngine(
            EngineConfig(move_budget=rounds, step_budget=rounds)
        )
        engine_rates = []
        for trial in range(trials):
            world = GridWorld(target=target, distance_bound=8)
            outcome = engine.run(
                AutomatonAlgorithm(automaton),
                4,
                world,
                rng=spawn_generators(500 + trial, 4),
            )
            engine_rates.append(outcome.found)

        assert np.mean(colony_rates) == pytest.approx(
            np.mean(engine_rates), abs=0.15
        )
