"""Shim for legacy editable installs (offline environments without `wheel`).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` on toolchains that lack the
``wheel`` package needed for PEP-660 editable installs.
"""

from setuptools import setup

setup()
