#!/usr/bin/env python3
"""Regenerate the golden KS reference samples under ``tests/golden/``.

Each golden file freezes one algorithm family's move-count distribution
as produced by a trusted per-trial backend (``closed_form`` — bit-exact
under the ``derive_seed`` contract, so regeneration is reproducible).
The distribution-regression test
(``tests/unit/test_golden_distributions.py``) diffs the ``batched``
backend's output against these recorded samples with a two-sample KS
test instead of re-running the reference engine — backend refactors get
a fast, deterministic distribution gate.

Run from the repository root whenever :data:`repro.sim.cache.CODE_VERSION`
bumps for a *semantic* sampling change (a pure refactor must NOT need
regeneration — that is the point of the test)::

    PYTHONPATH=src python scripts/make_golden_samples.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.server.wire import request_to_wire  # noqa: E402
from repro.sim import AlgorithmSpec, SimulationRequest, simulate  # noqa: E402
from repro.sim.cache import CODE_VERSION  # noqa: E402

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "tests" / "golden"

#: The backend whose samples are frozen: per-trial, seed-exact.
GENERATOR_BACKEND = "closed_form"

#: One entry per recorded algorithm family — all six batched-covered
#: families since the kernel extraction (ROADMAP "more golden
#: families" item).  Modest D keeps generation around a second per
#: family; 400 samples give the KS test power without bloating the
#: repository.
FAMILIES = {
    "algorithm1": SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(8),
        n_agents=4,
        target=(8, 8),
        move_budget=500_000,
        n_trials=400,
        seed=20140507,
    ),
    "nonuniform": SimulationRequest(
        algorithm=AlgorithmSpec.nonuniform(8, 2),
        n_agents=4,
        target=(8, 8),
        move_budget=500_000,
        n_trials=400,
        seed=20140507,
    ),
    "uniform": SimulationRequest(
        algorithm=AlgorithmSpec.uniform(1),
        n_agents=4,
        target=(6, 5),
        move_budget=500_000,
        n_trials=400,
        seed=20140507,
        distance_bound=8,
    ),
    "doubly_uniform": SimulationRequest(
        algorithm=AlgorithmSpec.doubly_uniform(1),
        n_agents=4,
        target=(6, 5),
        move_budget=500_000,
        n_trials=400,
        seed=20140507,
        distance_bound=8,
    ),
    "random_walk": SimulationRequest(
        algorithm=AlgorithmSpec.random_walk(),
        n_agents=4,
        target=(6, 5),
        move_budget=200_000,
        n_trials=400,
        seed=20140507,
        distance_bound=8,
    ),
    "feinerman": SimulationRequest(
        algorithm=AlgorithmSpec.feinerman(),
        n_agents=4,
        target=(8, 8),
        move_budget=500_000,
        n_trials=400,
        seed=20140507,
    ),
}


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for family, request in FAMILIES.items():
        result = simulate(request, backend=GENERATOR_BACKEND, cache=False)
        samples = [int(value) for value in result.moves_or_budget()]
        payload = {
            "family": family,
            "generator_backend": GENERATOR_BACKEND,
            "code_version": CODE_VERSION,
            "metric": "moves_or_budget",
            "request": request_to_wire(request),
            "samples": samples,
        }
        path = GOLDEN_DIR / f"{family}_moves.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(
            f"{path.relative_to(GOLDEN_DIR.parents[1])}: {len(samples)} "
            f"samples, mean {sum(samples) / len(samples):.1f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
