#!/usr/bin/env python3
"""Merge regenerated experiment sections into EXPERIMENTS.md.

Used when a subset of experiments is re-run (``--only E03,E14``):
replaces matching ``### EXX`` sections in the main report with the
fresh ones and appends sections the main report lacks, preserving
experiment-id order.

Usage: python scripts/merge_experiment_sections.py EXPERIMENTS.md patch.md
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Tuple

_SECTION_RE = re.compile(r"^### (E\d+) — ", flags=re.MULTILINE)


def split_report(text: str) -> Tuple[str, Dict[str, str], List[str]]:
    """Split a report into (header, sections-by-id, id-order)."""
    matches = list(_SECTION_RE.finditer(text))
    if not matches:
        return text, {}, []
    header = text[: matches[0].start()]
    sections: Dict[str, str] = {}
    order: List[str] = []
    for index, match in enumerate(matches):
        end = matches[index + 1].start() if index + 1 < len(matches) else len(text)
        sections[match.group(1)] = text[match.start(): end]
        order.append(match.group(1))
    return header, sections, order


def merge(main_text: str, patch_text: str) -> str:
    header, sections, order = split_report(main_text)
    _, patch_sections, _ = split_report(patch_text)
    for key, body in patch_sections.items():
        if key not in sections:
            order.append(key)
        sections[key] = body
    order = sorted(order)
    merged = header + "".join(
        sections[key] if sections[key].endswith("\n") else sections[key] + "\n"
        for key in order
    )
    return merged


def main(argv: List[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    main_path, patch_path = argv[1], argv[2]
    with open(main_path, encoding="utf-8") as handle:
        main_text = handle.read()
    with open(patch_path, encoding="utf-8") as handle:
        patch_text = handle.read()
    with open(main_path, "w", encoding="utf-8") as handle:
        handle.write(merge(main_text, patch_text))
    print(f"merged {patch_path} into {main_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
