"""E08 bench — Algorithm 5 phase structure (Lemmas 3.10/3.12/3.13)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e08_phase_structure import run, sample_phase_moves


def test_e08_phase_moves_kernel(benchmark, rng):
    moves = benchmark(sample_phase_moves, 5, 8, 1, 8, 2_000, rng)
    assert moves.shape == (2_000,)


def test_e08_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
