"""E04 bench — composite coin (Lemma 3.6)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e04_coin import empirical_tails_rate, run


def test_e04_tails_rate_kernel(benchmark, rng):
    rate = benchmark(empirical_tails_rate, 3, 1, 100_000, rng)
    assert 0.0 <= rate <= 1.0


def test_e04_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
