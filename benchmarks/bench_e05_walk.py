"""E05 bench — walk(k, l) length law (Lemma 3.8)."""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.experiments.e05_walk import run


def walk_histogram_kernel(rng: np.random.Generator) -> np.ndarray:
    """The sampling + histogram core of E05 at one (k, l)."""
    lengths = rng.geometric(2.0**-4, size=200_000) - 1
    return np.bincount(lengths[lengths <= 16], minlength=17)


def test_e05_histogram_kernel(benchmark, rng):
    histogram = benchmark(walk_histogram_kernel, rng)
    assert histogram.sum() > 0


def test_e05_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
