"""Sweep-compilation benchmark — updates ``BENCH_sim_backends.json``.

Times the same experiment sweep (Algorithm 1 grid points at several
colony sizes, the repo's hottest workload shape) two ways:

* **per-trial path** — a plain ``trial(params, rng)`` function, one
  closed-form colony per trial, sharded as ``SweepShard`` tasks across
  a ``ProcessPoolExecutor`` (the pre-compilation execution model);
* **compiled path** — the same grid as ``SimulationTrial`` factories,
  each grid point compiled into one vectorized ``batched``-backend
  call.

The regression gate asserts the compiled path at least 5x the
per-trial ProcessPool path; the measured margin lands in the shared
JSON record next to the backend throughput numbers.  Both paths bypass
the result cache — the point is simulation throughput, not replay.
"""

from __future__ import annotations

import json
import time

import numpy as np

from bench_sim_backends import update_record
from repro.sim import AlgorithmSpec, SimulationRequest, SimulationTrial, Sweep
from repro.sim.fast import fast_algorithm1

WORKLOAD = {
    "algorithm": "algorithm1",
    "distance": 32,
    "target": (32, 32),
    "move_budget": 100_000,
    "n_values": (2, 4, 8, 16),
    "trials": 100,
    "pool_workers": 2,
}

_SEED = 20140507


def _per_trial(params, rng):
    """One closed-form colony per trial — the pre-compilation model."""
    return float(
        fast_algorithm1(
            WORKLOAD["distance"],
            int(params["n"]),
            WORKLOAD["target"],
            rng,
            WORKLOAD["move_budget"],
        ).moves_or_budget
    )


def _compiled_request(params) -> SimulationRequest:
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(WORKLOAD["distance"]),
        n_agents=int(params["n"]),
        target=WORKLOAD["target"],
        move_budget=WORKLOAD["move_budget"],
    )


def test_sweep_compilation_record():
    grid = [{"n": n} for n in WORKLOAD["n_values"]]
    trials = WORKLOAD["trials"]

    start = time.perf_counter()
    baseline_rows = Sweep(
        _per_trial, grid, trials=trials, seed=_SEED,
        workers=WORKLOAD["pool_workers"],
    ).run()
    per_trial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiled_rows = Sweep(
        SimulationTrial(_compiled_request, backend="batched", cache=False),
        grid, trials=trials, seed=_SEED,
    ).run()
    compiled_seconds = time.perf_counter() - start

    # Sanity: both paths measured the same workload (equal in
    # distribution; the batched pass pools each point's stream).
    for base, compiled in zip(baseline_rows, compiled_rows):
        assert base.params == compiled.params
        assert np.isfinite(compiled.estimate.mean)
        assert compiled.estimate.mean > 0

    speedup = per_trial_seconds / compiled_seconds
    payload = {
        "workload": WORKLOAD,
        "per_trial_pool_seconds": round(per_trial_seconds, 3),
        "compiled_batched_seconds": round(compiled_seconds, 3),
        "speedup_compiled_vs_per_trial": round(speedup, 1),
    }
    record = update_record("sweep_compilation", payload)
    print()
    print(json.dumps(record["sweep_compilation"], indent=2, sort_keys=True))
    assert speedup >= 5.0, (
        f"compiled sweeps must beat the per-trial ProcessPool path by "
        f">= 5x wall-clock, got {speedup:.1f}x"
    )
