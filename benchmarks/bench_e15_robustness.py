"""E15 bench — additive-noise robustness (Section 1 motivation)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e15_robustness import realized_composite_stop, run


def test_e15_composite_noise_kernel(benchmark, rng):
    stop = benchmark(realized_composite_stop, 256, 1, 1 / 256, rng)
    assert 0.0 < stop < 1.0


def test_e15_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
