"""Observability overhead gate — updates ``BENCH_sim_backends.json``.

The ISSUE's budget for the tracing + metrics layer: instrumentation
must stay cheap enough to be on by default.  This benchmark times the
standard batched hot path (Algorithm 1 colonies hunting the corner
target, the ``bench_jobs`` workload) twice:

* **instrumented** — tracing on, spans recorded to the ring (sink off:
  the JSONL sink is per-trace I/O a hot loop amortizes away, and CI
  tmpfs variance would dominate the measurement);
* **compiled out** — ``configure_tracing(enabled=False)``, the
  baseline where ``span()``/``child_span()`` short-circuit to a single
  flag test.  Metrics counters stay on in both runs: they are two dict
  operations per shard/lookup and have no off switch by design.

The gate asserts the instrumented path's best-of-N wall-clock stays
within 5% of the compiled-out baseline (plus a small absolute
allowance so a loaded CI runner's scheduler jitter on a sub-second
workload cannot fail the gate on its own — the same pattern as
``bench_jobs``).

Run as pytest (CI's perf step) or directly::

    PYTHONPATH=src python benchmarks/bench_obs.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from bench_sim_backends import update_record

from repro.obs.trace import clear_ring, configure_tracing, ring_spans
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

WORKLOAD = {
    "algorithm": "algorithm1",
    "distance": 32,
    "n_agents": 8,
    "target": (32, 32),
    "move_budget": 100_000,
    "n_trials": 400,
    "backend": "batched",
}

_REPEATS = 3
_MAX_OVERHEAD_RATIO = 1.05
_NOISE_ALLOWANCE_SECONDS = 0.25


def _request(seed: int) -> SimulationRequest:
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(WORKLOAD["distance"]),
        n_agents=WORKLOAD["n_agents"],
        target=WORKLOAD["target"],
        move_budget=WORKLOAD["move_budget"],
        n_trials=WORKLOAD["n_trials"],
        seed=seed,
    )


def _time_once(seed: int) -> float:
    start = time.perf_counter()
    result = simulate(
        _request(seed), backend=WORKLOAD["backend"], cache=False
    )
    elapsed = time.perf_counter() - start
    assert len(result.outcomes) == WORKLOAD["n_trials"]
    return elapsed


def _best_of(enabled: bool) -> float:
    configure_tracing(enabled=enabled, sink=False)
    clear_ring()
    try:
        # Distinct seeds defeat any residual memoization while keeping
        # the workload statistically identical run to run.
        times = [_time_once(7000 + i) for i in range(_REPEATS)]
        if enabled:
            names = {sp.name for sp in ring_spans()}
            assert {"simulate", "job", "kernel.algorithm1"} <= names, (
                f"instrumented run recorded no trace (saw {sorted(names)}) "
                f"— the overhead comparison would be meaningless"
            )
        return min(times)
    finally:
        configure_tracing(enabled=True, sink=True)
        clear_ring()


def measure() -> dict:
    # Warm both code paths (imports, kernel JIT-ish first-touch costs)
    # before timing anything.
    configure_tracing(enabled=True, sink=False)
    _time_once(6999)
    instrumented = _best_of(enabled=True)
    compiled_out = _best_of(enabled=False)
    ratio = instrumented / compiled_out
    return {
        "workload": WORKLOAD,
        "instrumented_seconds": round(instrumented, 4),
        "compiled_out_seconds": round(compiled_out, 4),
        "overhead_ratio": round(ratio, 4),
        "max_overhead_ratio": _MAX_OVERHEAD_RATIO,
        "noise_allowance_seconds": _NOISE_ALLOWANCE_SECONDS,
        "repeats": _REPEATS,
    }


def _gate(payload: dict) -> None:
    instrumented = payload["instrumented_seconds"]
    compiled_out = payload["compiled_out_seconds"]
    bound = compiled_out * _MAX_OVERHEAD_RATIO + _NOISE_ALLOWANCE_SECONDS
    assert instrumented <= bound, (
        f"tracing overhead exceeds the 5% budget "
        f"(+{_NOISE_ALLOWANCE_SECONDS}s noise allowance): "
        f"compiled-out {compiled_out:.3f}s, instrumented "
        f"{instrumented:.3f}s ({payload['overhead_ratio']:.3f}x, "
        f"bound {bound:.3f}s)"
    )


def test_observability_overhead_record():
    payload = measure()
    record = update_record("observability", payload)
    print()
    print(json.dumps(record["observability"], indent=2, sort_keys=True))
    _gate(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when instrumentation overhead exceeds the "
             "5%% budget against the compiled-out baseline",
    )
    args = parser.parse_args(argv)
    payload = measure()
    record = update_record("observability", payload)
    print(json.dumps(record["observability"], indent=2, sort_keys=True))
    if args.check:
        try:
            _gate(payload)
        except AssertionError as error:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
        print("observability overhead gate: ok "
              f"({payload['overhead_ratio']:.3f}x <= "
              f"{_MAX_OVERHEAD_RATIO}x + noise)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
