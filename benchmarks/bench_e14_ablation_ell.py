"""E14 bench — b vs l ablation for Algorithm 5 (discussion section)."""

from __future__ import annotations

from conftest import report

from repro.core.uniform import calibrated_K
from repro.experiments.e14_ablation_ell import run
from repro.sim.fast import fast_uniform


def test_e14_coarse_coin_kernel(benchmark, rng):
    outcome = benchmark(
        fast_uniform, 4, 2, calibrated_K(2), (32, 32), rng, 50_000_000
    )
    assert outcome.found


def test_e14_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
