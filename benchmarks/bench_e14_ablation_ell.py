"""E14 bench — b vs l ablation for Algorithm 5 (discussion section)."""

from __future__ import annotations

from conftest import report

from repro.core.uniform import calibrated_K
from repro.experiments.e14_ablation_ell import run
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

_REQUEST = SimulationRequest(
    algorithm=AlgorithmSpec.uniform(2, calibrated_K(2)),
    n_agents=4,
    target=(32, 32),
    move_budget=50_000_000,
    seed=20140507,
)


def test_e14_coarse_coin_kernel(benchmark):
    result = benchmark(simulate, _REQUEST, "closed_form")
    assert result.outcome.found


def test_e14_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
