"""Experiment-compiler benchmark — fused report vs sequential loop.

Times the two ways to regenerate the full smoke-scale report
(E01–E16):

* **sequential** — the historical loop: each experiment's ``run()``
  one after another, single process;
* **compiled** — ``compile_program`` + ``execute_program``: declared
  grids merged and dedup'd across experiments, executed as one fused
  program through the job layer, experiments finalized in parallel
  worker processes.

Each side executes against its own fresh cache directory, so neither
borrows the other's results, and the compiled results are asserted
equal to the sequential ones — the speedup is never bought with a
different answer.

Gates (``--check``, run in CI) are tiered by core count, because the
compiled path's wins are parallelism (the merge/dedup stage is a
no-op at smoke scale, where no grids currently overlap):

* >= 4 cores: compiled must be >= 2.0x faster;
* 2–3 cores: >= 1.3x;
* 1 core: no material regression (>= 0.8x) — the compiled path still
  pays its planning/scatter overhead without any cores to spend it on.

Two invariants are gated at every tier:

* **dedup** — recompiling against the warmed cache must mark every
  merged point cache-satisfied, and re-executing the program must
  perform zero backend runs (proven via
  :func:`repro.sim.jobs.backend_run_count`);
* **identity** — every compiled ``ExperimentResult`` equals its
  sequential counterpart, field for field.

The section lands in ``BENCH_sim_backends.json`` (with a dated
snapshot in ``BENCH_history.jsonl``) via the shared ``update_record``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from bench_sim_backends import update_record

from repro.experiments import REGISTRY, SPEC_REGISTRY
from repro.experiments.base import DEFAULT_SEED
from repro.experiments.compiler import compile_program, execute_program
from repro.sim.cache import configure_cache, get_cache
from repro.sim.jobs import backend_run_count

SCALE = "smoke"

#: (minimum cores, required speedup) — first matching row applies.
SPEEDUP_TIERS = ((4, 2.0), (2, 1.3), (1, 0.8))


def required_speedup(cpu_count: int) -> float:
    for floor, speedup in SPEEDUP_TIERS:
        if cpu_count >= floor:
            return speedup
    return SPEEDUP_TIERS[-1][1]


def run_sequential(cache_dir: str) -> dict:
    """The historical loop: every experiment's ``run()``, in order."""
    configure_cache(directory=cache_dir)
    results = {}
    started = time.perf_counter()
    for key in sorted(REGISTRY):
        results[key] = REGISTRY[key](scale=SCALE, seed=DEFAULT_SEED)
    return {
        "seconds": time.perf_counter() - started,
        "results": results,
    }


def run_compiled(cache_dir: str, workers: int) -> dict:
    """The fused program: compile, execute, replay-check the dedup."""
    configure_cache(directory=cache_dir)
    specs = [SPEC_REGISTRY[key](SCALE) for key in sorted(SPEC_REGISTRY)]
    started = time.perf_counter()
    program = compile_program(specs, SCALE, DEFAULT_SEED)
    report = execute_program(program, workers=workers)
    elapsed = time.perf_counter() - started

    # Warm-replay invariant: the same program compiled again must be
    # fully cache-satisfied and execute without touching a backend.
    replay_program = compile_program(specs, SCALE, DEFAULT_SEED)
    runs_before = backend_run_count()
    replay = execute_program(replay_program, workers=1)
    return {
        "seconds": elapsed,
        "results": report.results,
        "stats": program.stats,
        "warm_seconds": report.warm_seconds,
        "finalize_seconds": report.finalize_seconds,
        "points_executed": report.points_executed,
        "scattered_entries": report.scattered_entries,
        "replay_cache_satisfied": replay_program.stats.cache_satisfied,
        "replay_merged_points": replay_program.stats.merged_points,
        "replay_backend_runs": backend_run_count() - runs_before,
        "replay_points_executed": replay.points_executed,
    }


def measure(workers: int) -> dict:
    previous_cache = get_cache().directory
    try:
        with tempfile.TemporaryDirectory() as tmp:
            sequential = run_sequential(os.path.join(tmp, "sequential"))
            compiled = run_compiled(os.path.join(tmp, "compiled"), workers)
    finally:
        configure_cache(directory=previous_cache)

    mismatched = sorted(
        key
        for key in REGISTRY
        if compiled["results"][key] != sequential["results"][key]
    )
    failed_checks = sorted(
        key
        for key, result in compiled["results"].items()
        if not result.all_passed
    )
    stats = compiled["stats"]
    return {
        "scale": SCALE,
        "seed": DEFAULT_SEED,
        "experiments": len(REGISTRY),
        "cpu_count": os.cpu_count() or 1,
        "workers": workers,
        "sequential_seconds": round(sequential["seconds"], 3),
        "compiled_seconds": round(compiled["seconds"], 3),
        "compiled_warm_seconds": round(compiled["warm_seconds"], 3),
        "compiled_finalize_seconds": round(compiled["finalize_seconds"], 3),
        "speedup_x": round(sequential["seconds"] / compiled["seconds"], 3),
        "required_speedup_x": required_speedup(os.cpu_count() or 1),
        "speedup_tiers": [list(tier) for tier in SPEEDUP_TIERS],
        "declared_points": stats.declared_points,
        "merged_points": stats.merged_points,
        "points_executed": compiled["points_executed"],
        "scattered_entries": compiled["scattered_entries"],
        "replay_cache_satisfied": compiled["replay_cache_satisfied"],
        "replay_merged_points": compiled["replay_merged_points"],
        "replay_backend_runs": compiled["replay_backend_runs"],
        "replay_points_executed": compiled["replay_points_executed"],
        "mismatched_experiments": mismatched,
        "failed_checks": failed_checks,
    }


def assert_gates(payload: dict) -> None:
    assert not payload["mismatched_experiments"], (
        f"compiled results must equal sequential results, differ on: "
        f"{payload['mismatched_experiments']}"
    )
    assert not payload["failed_checks"], (
        f"compiled experiments report failing checks: "
        f"{payload['failed_checks']}"
    )
    assert (
        payload["replay_cache_satisfied"] == payload["replay_merged_points"]
    ), (
        f"warm recompile must mark every point cache-satisfied "
        f"({payload['replay_cache_satisfied']}/"
        f"{payload['replay_merged_points']})"
    )
    assert payload["replay_backend_runs"] == 0, (
        f"warm replay must perform zero backend runs, did "
        f"{payload['replay_backend_runs']}"
    )
    assert payload["replay_points_executed"] == 0, (
        f"warm replay must execute zero points, did "
        f"{payload['replay_points_executed']}"
    )
    speedup, floor = payload["speedup_x"], payload["required_speedup_x"]
    assert speedup >= floor, (
        f"compiled report must be >= {floor}x the sequential loop on "
        f"{payload['cpu_count']} core(s), got {speedup}x "
        f"(sequential {payload['sequential_seconds']}s, compiled "
        f"{payload['compiled_seconds']}s)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when a speedup or invariant gate is violated",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="compiled-path worker processes (default: cpu count)",
    )
    args = parser.parse_args(argv)

    workers = args.workers or os.cpu_count() or 1
    payload = measure(workers)
    update_record("experiment_compile", payload)
    print(json.dumps({"experiment_compile": payload}, indent=2, sort_keys=True))
    if not args.check:
        return 0
    try:
        assert_gates(payload)
    except AssertionError as error:
        print(f"GATE FAILED: {error}", file=sys.stderr)
        return 1
    print(
        f"experiment-compile gates OK: {payload['speedup_x']}x vs the "
        f"sequential loop (floor {payload['required_speedup_x']}x at "
        f"{payload['cpu_count']} cores), {payload['declared_points']} "
        f"declared -> {payload['merged_points']} merged points, warm "
        f"replay 100% cache-satisfied with 0 backend runs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
