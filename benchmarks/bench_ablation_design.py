"""Ablation benches for DESIGN.md's key implementation choices.

* faithful step engine vs distribution-exact fast simulator — the
  price of step-level fidelity (design decision 2);
* counting vs ignoring oracle return moves — the model's factor-2
  claim (design decision 4);
* faithful k-flip composite coin vs single-draw equivalent (design
  decision the coin convention rests on).
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import Algorithm1
from repro.core.coin import CompositeCoin
from repro.grid.world import GridWorld
from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.engine import EngineConfig, SearchEngine

DISTANCE = 16
TARGET = (10, 9)
BUDGET = 500_000

_REQUEST = SimulationRequest(
    algorithm=AlgorithmSpec.algorithm1(DISTANCE),
    n_agents=4,
    target=TARGET,
    move_budget=BUDGET,
    seed=11,
)


def run_engine(count_returns: bool = False) -> int:
    # Raw engine rather than the facade: count_return_moves is an
    # engine-only policy knob the ablation is about.
    engine = SearchEngine(
        EngineConfig(move_budget=BUDGET, count_return_moves=count_returns)
    )
    world = GridWorld(target=TARGET, distance_bound=DISTANCE)
    outcome = engine.run(Algorithm1(DISTANCE), 4, world, rng=11)
    return outcome.moves_or_budget


def run_fast() -> int:
    return simulate(_REQUEST, backend="closed_form").outcome.moves_or_budget


def test_ablation_faithful_engine(benchmark):
    moves = benchmark(run_engine)
    assert moves > 0


def test_ablation_fast_simulator(benchmark):
    """Same search, iteration-level sampling: typically 100x+ faster."""
    moves = benchmark(run_fast)
    assert moves > 0


def test_ablation_counted_returns(benchmark):
    """Charging return paths must stay within the model's factor 2."""
    moves_counted = benchmark(run_engine, True)
    moves_plain = run_engine(False)
    assert moves_counted <= 4 * max(1, moves_plain) + BUDGET * 0  # sanity only


def test_ablation_faithful_coin(benchmark, rng):
    coin = CompositeCoin(6, 1)
    flips = benchmark.pedantic(
        lambda: sum(coin.flip(rng) for _ in range(10_000)),
        rounds=3,
        iterations=1,
    )
    assert 0 <= flips <= 10_000


def test_ablation_fast_coin(benchmark, rng):
    coin = CompositeCoin(6, 1)
    flips = benchmark.pedantic(
        lambda: sum(coin.flip_fast(rng) for _ in range(10_000)),
        rounds=3,
        iterations=1,
    )
    assert 0 <= flips <= 10_000
    empirical = flips / 10_000
    assert empirical == pytest.approx(coin.tails_probability, abs=0.01)
