"""Async job-layer benchmark — updates ``BENCH_sim_backends.json``.

Measures what the PR 3 job layer costs and what it buys on the
standard workload (Algorithm 1 colonies hunting the corner target,
the same request shape as ``bench_sim_backends.py``):

* **overhead** — the blocking facade is now ``submit(...).result()``
  on a driver thread; the gate asserts the async path's wall-clock is
  within 10% of timing the same workload through ``simulate()``;
* **submit -> first shard latency** — how quickly a streaming consumer
  (``iter_results()``) sees its first completed trial shard after
  submission, the number an incremental dashboard or HTTP front end
  would care about.

Timing runs bypass the result cache — a cached replay would measure
the cache, not the job layer.  Best-of-N timing damps scheduler noise.
"""

from __future__ import annotations

import json
import time

from bench_sim_backends import update_record
from repro.sim import AlgorithmSpec, SimulationRequest, simulate, simulate_async

WORKLOAD = {
    "algorithm": "algorithm1",
    "distance": 32,
    "n_agents": 8,
    "target": (32, 32),
    "move_budget": 100_000,
    "n_trials": 400,
    "backend": "batched",
}

_REPEATS = 3


def _request() -> SimulationRequest:
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(WORKLOAD["distance"]),
        n_agents=WORKLOAD["n_agents"],
        target=WORKLOAD["target"],
        move_budget=WORKLOAD["move_budget"],
        n_trials=WORKLOAD["n_trials"],
        seed=20140507,
    )


def _time_blocking() -> float:
    start = time.perf_counter()
    result = simulate(_request(), backend=WORKLOAD["backend"], cache=False)
    elapsed = time.perf_counter() - start
    assert len(result.outcomes) == WORKLOAD["n_trials"]
    return elapsed


def _time_async() -> tuple:
    """(total wall-clock, submit->first-shard latency) for one run."""
    start = time.perf_counter()
    job = simulate_async(_request(), backend=WORKLOAD["backend"], cache=False)
    first_shard = None
    trials_seen = 0
    for shard in job.iter_results():
        if first_shard is None:
            first_shard = time.perf_counter() - start
        trials_seen += shard.trial_count
    job.result()
    elapsed = time.perf_counter() - start
    assert trials_seen == WORKLOAD["n_trials"]
    return elapsed, first_shard


def test_job_layer_overhead_record():
    blocking = min(_time_blocking() for _ in range(_REPEATS))
    async_runs = [_time_async() for _ in range(_REPEATS)]
    async_seconds = min(total for total, _ in async_runs)
    first_shard_seconds = min(first for _, first in async_runs)

    overhead = async_seconds / blocking
    payload = {
        "workload": WORKLOAD,
        "blocking_seconds": round(blocking, 4),
        "async_streaming_seconds": round(async_seconds, 4),
        "submit_to_first_shard_seconds": round(first_shard_seconds, 4),
        "async_overhead_ratio": round(overhead, 3),
        "repeats": _REPEATS,
    }
    record = update_record("jobs", payload)
    print()
    print(json.dumps(record["jobs"], indent=2, sort_keys=True))
    # Relative bound plus a small absolute allowance: on a sub-second
    # workload, scheduler jitter on a loaded CI runner can exceed 10%
    # of the wall-clock on its own — the allowance keeps the gate about
    # the job layer, not the runner's noise floor.
    assert async_seconds <= blocking * 1.10 + 0.25, (
        f"async streaming must stay within 10% (+0.25s noise allowance) "
        f"of the blocking path: blocking {blocking:.3f}s, "
        f"async {async_seconds:.3f}s ({overhead:.2f}x)"
    )
