"""E03 bench — Algorithm 1 scaling (Theorem 3.5)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e03_nonuniform_scaling import run
from repro.sim.fast import fast_algorithm1


def test_e03_first_find_kernel(benchmark, rng):
    outcome = benchmark(
        fast_algorithm1, 128, 16, (128, 128), rng, 50_000_000
    )
    assert outcome.found


def test_e03_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
