"""E03 bench — Algorithm 1 scaling (Theorem 3.5)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e03_nonuniform_scaling import run
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

_REQUEST = SimulationRequest(
    algorithm=AlgorithmSpec.algorithm1(128),
    n_agents=16,
    target=(128, 128),
    move_budget=50_000_000,
    seed=20140507,
)


def test_e03_first_find_kernel(benchmark):
    result = benchmark(simulate, _REQUEST, "closed_form")
    assert result.outcome.found


def test_e03_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
