"""E12 bench — head-to-head baseline comparison."""

from __future__ import annotations

from conftest import report

from repro.experiments.e12_baselines import run
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

_REQUEST = SimulationRequest(
    algorithm=AlgorithmSpec.feinerman(),
    n_agents=8,
    target=(32, 32),
    move_budget=10_000_000,
    seed=20140507,
)


def test_e12_feinerman_kernel(benchmark):
    result = benchmark(simulate, _REQUEST, "closed_form")
    assert result.outcome.found


def test_e12_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
