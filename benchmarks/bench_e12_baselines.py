"""E12 bench — head-to-head baseline comparison."""

from __future__ import annotations

from conftest import report

from repro.baselines.feinerman import fast_feinerman
from repro.experiments.e12_baselines import run


def test_e12_feinerman_kernel(benchmark, rng):
    outcome = benchmark(fast_feinerman, 8, (32, 32), rng, 10_000_000)
    assert outcome.found


def test_e12_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
