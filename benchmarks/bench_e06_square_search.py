"""E06 bench — search(k, l) visit probabilities (Lemma 3.9)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e06_square_search import empirical_visit_rates, run


def test_e06_visit_rates_kernel(benchmark, rng):
    rates = benchmark(
        empirical_visit_rates, 3, 1, [(0, 8), (8, 8), (1, 1)], 100_000, rng
    )
    assert len(rates) == 3


def test_e06_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
