"""Per-family kernel throughput benchmark and regression gate.

Measures colonies/sec through the ``batched`` backend (the NumPy
binding of the shared kernel core) for every family the kernels cover,
plus one **long-tail** lshape workload — a large move budget with a
distant target, so the pair pool drains to a few survivors that grind
thousands of rounds.  That tail is exactly what the blocked-round
optimization targets, and the gate proves it on the same machine, in
the same run: an in-file copy of the pre-extraction per-round kernel
(``_legacy_batch_lshape``, reproducing the PR-4-era backend's per-round
work including its bincount diagnostics) is timed against the same
workload and the new kernel must beat it by >= 1.3x.

The three families the blocked-round rewrite targeted — ``uniform``,
``doubly-uniform``, ``random-walk`` — carry the same kind of gate at a
higher bar: verbatim in-file copies of their pre-optimization kernels
(``_legacy_batch_uniform`` & co., the per-round one-draw-per-round
versions bound to NumPy) run the same family workloads in the same
process, and each new kernel must beat its legacy twin by >= 5x.

Numbers land in the ``kernels`` section of ``BENCH_sim_backends.json``
(and the dated ``BENCH_history.jsonl`` trail).  Running with
``--check`` additionally compares each family against the committed
record with a coarse cross-machine floor — catching
order-of-magnitude regressions (a de-vectorized op, an accidental
object-dtype array) without flaking on hardware differences.

Run as pytest (CI's perf step) or directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py --check

``--families uniform random-walk`` restricts measurement to the named
families for quick local iteration (the shared record is left untouched
on a filtered run so a partial payload never clobbers it).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import numpy as np

from bench_sim_backends import RECORD_PATH, update_record
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

#: New kernel must beat the in-file legacy kernel by this factor on the
#: long-tail workload (same machine, same run — hardware-independent).
SPEEDUP_FLOOR = 1.3

#: Each blocked family kernel must beat its verbatim in-file legacy
#: twin by this factor on the family workload (same machine, same run).
FAMILY_SPEEDUP_FLOOR = 5.0

#: Families with an in-file pre-optimization twin to race against.
LEGACY_FAMILIES = ("uniform", "doubly-uniform", "random-walk")

#: ``--check`` floor against the committed record: coarse on purpose,
#: CI machines are not the machine that wrote the record.
CROSS_MACHINE_FLOOR = 0.35

#: Large budget + distant target: most colonies find early, the tail
#: grinds — the regime where per-round overhead used to dominate.
LONG_TAIL = {
    "algorithm": "algorithm1",
    "distance": 32,
    "n_agents": 8,
    "target": (32, 32),
    "move_budget": 2_000_000,
    "n_trials": 256,
}

#: One representative workload per kernel family (trial counts scaled
#: so each measurement covers a comparable wall-clock slice).
FAMILY_WORKLOADS = {
    "algorithm1": (AlgorithmSpec.algorithm1(32), 400, 100_000, (32, 32)),
    "nonuniform": (AlgorithmSpec.nonuniform(32, 2), 400, 100_000, (32, 32)),
    "uniform": (AlgorithmSpec.uniform(1), 128, 500_000, (16, 16)),
    "doubly-uniform": (AlgorithmSpec.doubly_uniform(1), 128, 500_000, (16, 16)),
    "random-walk": (AlgorithmSpec.random_walk(), 64, 200_000, (12, 9)),
    "feinerman": (AlgorithmSpec.feinerman(), 512, 500_000, (16, 16)),
}

N_AGENTS = 8
SEED = 20140507
REPEATS = 2


def _family_request(family: str) -> SimulationRequest:
    spec, n_trials, move_budget, target = FAMILY_WORKLOADS[family]
    return SimulationRequest(
        algorithm=spec, n_agents=N_AGENTS, target=target,
        move_budget=move_budget, n_trials=n_trials, seed=SEED,
    )


def _rate(request: SimulationRequest) -> float:
    """Best-of-N colonies/sec through the batched backend, cache off."""
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = simulate(request, backend="batched", cache=False)
        elapsed = time.perf_counter() - start
        assert len(result.outcomes) == request.n_trials
        best = max(best, request.n_trials / elapsed)
    return best


# ---------------------------------------------------------------------------
# The pre-extraction lshape kernel, kept as the speedup reference: one
# round per RNG draw, two compaction passes per round, per-round
# bincount diagnostics — the same work the PR-4-era backend did (only
# the facade/outcome-construction shell is omitted, which makes the
# measured speedup conservative: the new path is timed *through* the
# facade).
# ---------------------------------------------------------------------------

_SENTINEL = np.iinfo(np.int64).max


def _legacy_sample_sorties(rng, stop_probability, count):
    signs_v = rng.integers(0, 2, size=count) * 2 - 1
    signs_h = rng.integers(0, 2, size=count) * 2 - 1
    lengths_v = rng.geometric(stop_probability, size=count) - 1
    lengths_h = rng.geometric(stop_probability, size=count) - 1
    return signs_v, lengths_v, signs_h, lengths_h


def _legacy_sortie_hits(target, signs_v, lengths_v, signs_h, lengths_h):
    x, y = target
    hit_vertical = (x == 0) & (signs_v * y >= 0) & (lengths_v >= abs(y))
    hit_horizontal = (
        (signs_v * lengths_v == y) & (signs_h * x >= 0) & (lengths_h >= abs(x))
    )
    hit = hit_vertical | hit_horizontal
    moves_at_hit = np.where(hit_vertical, abs(y), lengths_v + abs(x))
    return hit, moves_at_hit


def _legacy_batch_lshape(
    stop_probability, n_agents, n_trials, target, rng, move_budget
):
    pair_trial = np.repeat(np.arange(n_trials), n_agents)
    pair_agent = np.tile(np.arange(n_agents), n_trials)
    best = np.full(n_trials, _SENTINEL, dtype=np.int64)
    best_finder = np.full(n_trials, -1, dtype=np.int64)
    trial_iterations = np.zeros(n_trials, dtype=np.int64)
    trial_rounds = np.zeros(n_trials, dtype=np.int64)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)

    expected_len = max(1.0, 2.0 * (1.0 / stop_probability - 1.0))
    max_rounds = int(200 * (move_budget / expected_len + 1)) + 10_000
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        counts = np.bincount(pair_trial, minlength=n_trials)
        trial_iterations += counts
        trial_rounds += counts > 0
        sv, lv, sh, lh = _legacy_sample_sorties(
            rng, stop_probability, pair_trial.size
        )
        hit, moves_at_hit = _legacy_sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        if np.any(eligible):
            np.minimum.at(best, pair_trial[eligible], totals[eligible])
            improved = eligible & (totals == best[pair_trial])
            best_finder[pair_trial[improved]] = pair_agent[improved]
        survivors = ~hit
        cumulative = (cumulative + lv + lh)[survivors]
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = cumulative < limit
        cumulative = cumulative[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


# ---------------------------------------------------------------------------
# The pre-blocked-round uniform / doubly-uniform / random-walk kernels,
# verbatim from the kernel core as it stood before the blocked rewrite,
# bound to NumPy: one fused draw per *round* (uniform families), one
# modest trajectory block with full (pairs x block x 2) int64 scratch
# (walk).  Their diagnostics (bincount per round, scatter-min finder
# fold) are preserved so the measured speedup compares equal work.
# ---------------------------------------------------------------------------

_LEGACY_MAX_PHASE = 50
_LEGACY_MAX_EPOCH = 40
_LEGACY_WALK_ELEMENTS = 1 << 19


def _legacy_fused_sorties(rng, stop_probability, shape):
    fused = (2, *shape) if isinstance(shape, tuple) else (2, shape)
    signs = rng.integers(0, 2, size=fused) * 2 - 1
    lengths = rng.geometric(stop_probability, size=fused) - 1
    return signs[0], lengths[0], signs[1], lengths[1]


def _legacy_score_hits(best, best_finder, pair_trial, pair_agent, totals, eligible):
    if not np.any(eligible):
        return
    np.minimum.at(best, pair_trial[eligible], totals[eligible])
    improved = eligible & (totals == best[pair_trial])
    if not np.any(improved):
        return
    winner = np.full(best.size, _SENTINEL, dtype=np.int64)
    np.minimum.at(
        winner, pair_trial[improved], pair_agent[improved].astype(np.int64)
    )
    decided = winner != _SENTINEL
    best_finder[decided] = winner[decided]


def _legacy_state(n_trials, n_agents):
    pair_trial = np.repeat(np.arange(n_trials), n_agents)
    pair_agent = np.tile(np.arange(n_agents), n_trials)
    best = np.full(n_trials, _SENTINEL, dtype=np.int64)
    best_finder = np.full(n_trials, -1, dtype=np.int64)
    trial_iterations = np.zeros(n_trials, dtype=np.int64)
    trial_rounds = np.zeros(n_trials, dtype=np.int64)
    return pair_trial, pair_agent, best, best_finder, trial_iterations, trial_rounds


def _legacy_batch_uniform(
    n_agents, ell, K, n_trials, target, rng, move_budget,
    max_phase=_LEGACY_MAX_PHASE,
):
    discount = math.floor(math.log2(n_agents) / ell) if n_agents > 1 else 0
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _legacy_state(n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = np.zeros(pairs, dtype=np.int64)
    phase = np.zeros(pairs, dtype=np.int64)
    calls_left = np.zeros(pairs, dtype=np.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    max_rounds = int(200 * (move_budget / phase1_len + 1)) + 10_000
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        # Refill exhausted phase coins; pairs that run out of phases
        # retire below via the `alive` mask.
        need = calls_left <= 0
        while np.any(need):
            phase[need] += 1
            need &= phase <= max_phase
            if not np.any(need):
                break
            exponent = K + np.maximum(phase[need] - discount, 0)
            rho = np.exp2(exponent.astype(np.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = phase <= max_phase
        if not np.any(alive):
            break
        if pair_trial.size != int(alive.sum()):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
        counts = np.bincount(pair_trial, minlength=n_trials)
        trial_iterations += counts
        trial_rounds += counts > 0
        stop_p = np.exp2(-(phase.astype(np.float64) * ell))
        sv, lv, sh, lh = _legacy_fused_sorties(rng, stop_p, (pair_trial.size,))
        hit, moves_at_hit = _legacy_sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        _legacy_score_hits(
            best, best_finder, pair_trial, pair_agent, totals, eligible
        )
        new_cum = cumulative + lv + lh
        keep = ~hit & (new_cum < np.minimum(move_budget, best[pair_trial]))
        cumulative = new_cum[keep]
        calls_left = calls_left[keep] - 1
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _legacy_batch_doubly_uniform(
    n_agents, ell, K, n_trials, target, rng, move_budget,
    max_epoch=_LEGACY_MAX_EPOCH,
):
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _legacy_state(n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = np.zeros(pairs, dtype=np.int64)
    epoch = np.full(pairs, 1, dtype=np.int64)
    phase = np.zeros(pairs, dtype=np.int64)
    calls_left = np.zeros(pairs, dtype=np.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    max_rounds = int(200 * (move_budget / phase1_len + 1)) + 10_000
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        need = calls_left <= 0
        while np.any(need):
            phase[need] += 1
            rolled = need & (phase > epoch)
            if np.any(rolled):
                epoch[rolled] += 1
                phase[rolled] = 1
            need &= epoch <= max_epoch
            if not np.any(need):
                break
            exponent = K + np.maximum(phase[need] - epoch[need] // ell, 0)
            rho = np.exp2(exponent.astype(np.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = epoch <= max_epoch
        if not np.any(alive):
            break
        if pair_trial.size != int(alive.sum()):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            epoch = epoch[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
        counts = np.bincount(pair_trial, minlength=n_trials)
        trial_iterations += counts
        trial_rounds += counts > 0
        stop_p = np.exp2(-(phase.astype(np.float64) * ell))
        sv, lv, sh, lh = _legacy_fused_sorties(rng, stop_p, (pair_trial.size,))
        hit, moves_at_hit = _legacy_sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        _legacy_score_hits(
            best, best_finder, pair_trial, pair_agent, totals, eligible
        )
        new_cum = cumulative + lv + lh
        keep = ~hit & (new_cum < np.minimum(move_budget, best[pair_trial]))
        cumulative = new_cum[keep]
        calls_left = calls_left[keep] - 1
        epoch = epoch[keep]
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _legacy_batch_random_walk(n_agents, n_trials, target, rng, move_budget):
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _legacy_state(n_trials, n_agents)
    steps_table = np.array([(0, 1), (0, -1), (-1, 0), (1, 0)], dtype=np.int64)
    positions = np.zeros((n_trials * n_agents, 2), dtype=np.int64)
    x, y = target
    moves_done = 0
    while moves_done < move_budget and pair_trial.size:
        pairs = pair_trial.size
        block = min(
            move_budget - moves_done,
            max(1, _LEGACY_WALK_ELEMENTS // pairs),
        )
        counts = np.bincount(pair_trial, minlength=n_trials)
        trial_iterations += counts * block
        trial_rounds += counts > 0
        choices = rng.integers(0, 4, size=(pairs, block))
        trajectory = positions[:, None, :] + np.cumsum(
            steps_table[choices], axis=1
        )
        hits = (trajectory[:, :, 0] == x) & (trajectory[:, :, 1] == y)
        pair_hit = hits.any(axis=1)
        if pair_hit.any():
            step_of_hit = np.where(pair_hit, np.argmax(hits, axis=1), block)
            totals = moves_done + step_of_hit + 1
            _legacy_score_hits(
                best, best_finder, pair_trial, pair_agent, totals, pair_hit
            )
        positions = trajectory[:, -1, :]
        moves_done += block
        # Lockstep: any later find is later in time, so finished
        # colonies retire wholesale.
        keep = best[pair_trial] == _SENTINEL
        positions = positions[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _legacy_family_rate(family: str) -> float:
    """Best-of-N colonies/sec for a family's verbatim legacy kernel."""
    spec, n_trials, move_budget, target = FAMILY_WORKLOADS[family]
    best = 0.0
    for _ in range(REPEATS):
        rng = np.random.default_rng(SEED)
        start = time.perf_counter()
        if family == "uniform":
            _legacy_batch_uniform(
                N_AGENTS, spec.ell or 1, spec.K, n_trials, target, rng,
                move_budget, spec.max_phase or _LEGACY_MAX_PHASE,
            )
        elif family == "doubly-uniform":
            _legacy_batch_doubly_uniform(
                N_AGENTS, spec.ell or 1, spec.K, n_trials, target, rng,
                move_budget,
            )
        elif family == "random-walk":
            _legacy_batch_random_walk(
                N_AGENTS, n_trials, target, rng, move_budget
            )
        else:
            raise ValueError(f"no legacy kernel for family {family!r}")
        elapsed = time.perf_counter() - start
        best = max(best, n_trials / elapsed)
    return best


def _legacy_long_tail_rate() -> float:
    best = 0.0
    for _ in range(REPEATS):
        rng = np.random.default_rng(SEED)
        start = time.perf_counter()
        _legacy_batch_lshape(
            1.0 / LONG_TAIL["distance"], LONG_TAIL["n_agents"],
            LONG_TAIL["n_trials"], LONG_TAIL["target"], rng,
            LONG_TAIL["move_budget"],
        )
        elapsed = time.perf_counter() - start
        best = max(best, LONG_TAIL["n_trials"] / elapsed)
    return best


def _long_tail_rate() -> float:
    request = SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(LONG_TAIL["distance"]),
        n_agents=LONG_TAIL["n_agents"], target=LONG_TAIL["target"],
        move_budget=LONG_TAIL["move_budget"], n_trials=LONG_TAIL["n_trials"],
        seed=SEED,
    )
    return _rate(request)


def measure(families=None) -> dict:
    """Run every measurement and return the ``kernels`` section payload.

    ``families`` restricts the per-family sweep (and the legacy races
    and long-tail run that belong to the selected families) — used by
    the ``--families`` flag for quick local iteration.  A filtered
    payload is partial and must not be written to the shared record.
    """
    if families is None:
        families = sorted(FAMILY_WORKLOADS)
    else:
        unknown = sorted(set(families) - set(FAMILY_WORKLOADS))
        if unknown:
            raise ValueError(
                f"unknown families {unknown}; "
                f"choose from {sorted(FAMILY_WORKLOADS)}"
            )
        families = sorted(set(families))
    per_family = {
        family: round(_rate(_family_request(family)), 2)
        for family in families
    }
    legacy_family = {
        family: round(_legacy_family_rate(family), 2)
        for family in LEGACY_FAMILIES if family in families
    }
    payload = {
        "colonies_per_second": per_family,
        "legacy_colonies_per_second": legacy_family,
        "speedup_vs_legacy": {
            family: round(per_family[family] / rate, 2)
            for family, rate in legacy_family.items()
        },
        "speedup_floor": SPEEDUP_FLOOR,
        "family_speedup_floor": FAMILY_SPEEDUP_FLOOR,
    }
    if "algorithm1" in families:
        long_tail = _long_tail_rate()
        legacy = _legacy_long_tail_rate()
        payload.update({
            "long_tail_workload": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in LONG_TAIL.items()
            },
            "long_tail_colonies_per_second": round(long_tail, 2),
            "legacy_long_tail_colonies_per_second": round(legacy, 2),
            "speedup_vs_legacy_long_tail": round(long_tail / legacy, 2),
        })
    return payload


def assert_gates(payload: dict) -> None:
    if "speedup_vs_legacy_long_tail" in payload:
        speedup = payload["speedup_vs_legacy_long_tail"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"blocked kernels must beat the pre-extraction per-round kernel "
            f"by >= {SPEEDUP_FLOOR}x on the long-tail workload, got {speedup}x"
        )
    for family, speedup in payload.get("speedup_vs_legacy", {}).items():
        assert speedup >= FAMILY_SPEEDUP_FLOOR, (
            f"{family}: blocked kernel must beat its in-file legacy twin "
            f"by >= {FAMILY_SPEEDUP_FLOOR}x, got {speedup}x"
        )


def check_against_record(payload: dict, recorded: dict) -> list:
    """Coarse regression check vs the committed record; returns failures."""
    failures = []
    baseline = recorded.get("colonies_per_second", {})
    for family, rate in payload["colonies_per_second"].items():
        floor = baseline.get(family, 0.0) * CROSS_MACHINE_FLOOR
        if rate < floor:
            failures.append(
                f"{family}: {rate} colonies/sec < {floor:.1f} "
                f"({CROSS_MACHINE_FLOOR}x the recorded "
                f"{baseline[family]})"
            )
    return failures


def test_kernel_throughput_record():
    """Pytest entry: measure, gate, and record the kernels section."""
    recorded = {}
    if RECORD_PATH.exists():
        try:
            recorded = json.loads(RECORD_PATH.read_text()).get("kernels", {})
        except json.JSONDecodeError:
            recorded = {}
    payload = measure()
    record = update_record("kernels", payload)
    print()
    print(json.dumps(record.get("kernels", {}), indent=2, sort_keys=True))
    assert_gates(payload)
    failures = check_against_record(payload, recorded)
    assert not failures, "kernel throughput regressed: " + "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on gate violations or regressions vs the "
        "committed record",
    )
    parser.add_argument(
        "--families", nargs="+", metavar="FAMILY",
        choices=sorted(FAMILY_WORKLOADS),
        help="measure only these families (skips the record update — "
        "a partial payload must not clobber the kernels section)",
    )
    args = parser.parse_args(argv)

    recorded = {}
    if RECORD_PATH.exists():
        try:
            recorded = json.loads(RECORD_PATH.read_text()).get("kernels", {})
        except json.JSONDecodeError:
            recorded = {}
    payload = measure(args.families)
    if args.families is None:
        update_record("kernels", payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not args.check:
        return 0
    try:
        assert_gates(payload)
    except AssertionError as error:
        print(f"GATE FAILED: {error}", file=sys.stderr)
        return 1
    failures = check_against_record(payload, recorded)
    if failures:
        print("REGRESSION vs recorded baseline:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    parts = [
        f"{family} {speedup}x"
        for family, speedup in sorted(payload.get("speedup_vs_legacy", {}).items())
    ]
    if "speedup_vs_legacy_long_tail" in payload:
        parts.append(f"long-tail {payload['speedup_vs_legacy_long_tail']}x")
    print(
        "kernel gates OK vs in-file legacy twins: " + ", ".join(parts)
        + f" (floors {FAMILY_SPEEDUP_FLOOR}x family / {SPEEDUP_FLOOR}x long-tail)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
