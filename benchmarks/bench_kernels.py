"""Per-family kernel throughput benchmark and regression gate.

Measures colonies/sec through the ``batched`` backend (the NumPy
binding of the shared kernel core) for every family the kernels cover,
plus one **long-tail** lshape workload — a large move budget with a
distant target, so the pair pool drains to a few survivors that grind
thousands of rounds.  That tail is exactly what the blocked-round
optimization targets, and the gate proves it on the same machine, in
the same run: an in-file copy of the pre-extraction per-round kernel
(``_legacy_batch_lshape``, reproducing the PR-4-era backend's per-round
work including its bincount diagnostics) is timed against the same
workload and the new kernel must beat it by >= 1.3x.

Numbers land in the ``kernels`` section of ``BENCH_sim_backends.json``
(and the dated ``BENCH_history.jsonl`` trail).  Running with
``--check`` additionally compares each family against the committed
record with a coarse cross-machine floor — catching
order-of-magnitude regressions (a de-vectorized op, an accidental
object-dtype array) without flaking on hardware differences.

Run as pytest (CI's perf step) or directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from bench_sim_backends import RECORD_PATH, update_record
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

#: New kernel must beat the in-file legacy kernel by this factor on the
#: long-tail workload (same machine, same run — hardware-independent).
SPEEDUP_FLOOR = 1.3

#: ``--check`` floor against the committed record: coarse on purpose,
#: CI machines are not the machine that wrote the record.
CROSS_MACHINE_FLOOR = 0.35

#: Large budget + distant target: most colonies find early, the tail
#: grinds — the regime where per-round overhead used to dominate.
LONG_TAIL = {
    "algorithm": "algorithm1",
    "distance": 32,
    "n_agents": 8,
    "target": (32, 32),
    "move_budget": 2_000_000,
    "n_trials": 256,
}

#: One representative workload per kernel family (trial counts scaled
#: so each measurement covers a comparable wall-clock slice).
FAMILY_WORKLOADS = {
    "algorithm1": (AlgorithmSpec.algorithm1(32), 400, 100_000, (32, 32)),
    "nonuniform": (AlgorithmSpec.nonuniform(32, 2), 400, 100_000, (32, 32)),
    "uniform": (AlgorithmSpec.uniform(1), 128, 500_000, (16, 16)),
    "doubly-uniform": (AlgorithmSpec.doubly_uniform(1), 128, 500_000, (16, 16)),
    "random-walk": (AlgorithmSpec.random_walk(), 64, 200_000, (12, 9)),
    "feinerman": (AlgorithmSpec.feinerman(), 512, 500_000, (16, 16)),
}

N_AGENTS = 8
SEED = 20140507
REPEATS = 2


def _family_request(family: str) -> SimulationRequest:
    spec, n_trials, move_budget, target = FAMILY_WORKLOADS[family]
    return SimulationRequest(
        algorithm=spec, n_agents=N_AGENTS, target=target,
        move_budget=move_budget, n_trials=n_trials, seed=SEED,
    )


def _rate(request: SimulationRequest) -> float:
    """Best-of-N colonies/sec through the batched backend, cache off."""
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = simulate(request, backend="batched", cache=False)
        elapsed = time.perf_counter() - start
        assert len(result.outcomes) == request.n_trials
        best = max(best, request.n_trials / elapsed)
    return best


# ---------------------------------------------------------------------------
# The pre-extraction lshape kernel, kept as the speedup reference: one
# round per RNG draw, two compaction passes per round, per-round
# bincount diagnostics — the same work the PR-4-era backend did (only
# the facade/outcome-construction shell is omitted, which makes the
# measured speedup conservative: the new path is timed *through* the
# facade).
# ---------------------------------------------------------------------------

_SENTINEL = np.iinfo(np.int64).max


def _legacy_sample_sorties(rng, stop_probability, count):
    signs_v = rng.integers(0, 2, size=count) * 2 - 1
    signs_h = rng.integers(0, 2, size=count) * 2 - 1
    lengths_v = rng.geometric(stop_probability, size=count) - 1
    lengths_h = rng.geometric(stop_probability, size=count) - 1
    return signs_v, lengths_v, signs_h, lengths_h


def _legacy_sortie_hits(target, signs_v, lengths_v, signs_h, lengths_h):
    x, y = target
    hit_vertical = (x == 0) & (signs_v * y >= 0) & (lengths_v >= abs(y))
    hit_horizontal = (
        (signs_v * lengths_v == y) & (signs_h * x >= 0) & (lengths_h >= abs(x))
    )
    hit = hit_vertical | hit_horizontal
    moves_at_hit = np.where(hit_vertical, abs(y), lengths_v + abs(x))
    return hit, moves_at_hit


def _legacy_batch_lshape(
    stop_probability, n_agents, n_trials, target, rng, move_budget
):
    pair_trial = np.repeat(np.arange(n_trials), n_agents)
    pair_agent = np.tile(np.arange(n_agents), n_trials)
    best = np.full(n_trials, _SENTINEL, dtype=np.int64)
    best_finder = np.full(n_trials, -1, dtype=np.int64)
    trial_iterations = np.zeros(n_trials, dtype=np.int64)
    trial_rounds = np.zeros(n_trials, dtype=np.int64)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)

    expected_len = max(1.0, 2.0 * (1.0 / stop_probability - 1.0))
    max_rounds = int(200 * (move_budget / expected_len + 1)) + 10_000
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        counts = np.bincount(pair_trial, minlength=n_trials)
        trial_iterations += counts
        trial_rounds += counts > 0
        sv, lv, sh, lh = _legacy_sample_sorties(
            rng, stop_probability, pair_trial.size
        )
        hit, moves_at_hit = _legacy_sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        if np.any(eligible):
            np.minimum.at(best, pair_trial[eligible], totals[eligible])
            improved = eligible & (totals == best[pair_trial])
            best_finder[pair_trial[improved]] = pair_agent[improved]
        survivors = ~hit
        cumulative = (cumulative + lv + lh)[survivors]
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = cumulative < limit
        cumulative = cumulative[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _legacy_long_tail_rate() -> float:
    best = 0.0
    for _ in range(REPEATS):
        rng = np.random.default_rng(SEED)
        start = time.perf_counter()
        _legacy_batch_lshape(
            1.0 / LONG_TAIL["distance"], LONG_TAIL["n_agents"],
            LONG_TAIL["n_trials"], LONG_TAIL["target"], rng,
            LONG_TAIL["move_budget"],
        )
        elapsed = time.perf_counter() - start
        best = max(best, LONG_TAIL["n_trials"] / elapsed)
    return best


def _long_tail_rate() -> float:
    request = SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(LONG_TAIL["distance"]),
        n_agents=LONG_TAIL["n_agents"], target=LONG_TAIL["target"],
        move_budget=LONG_TAIL["move_budget"], n_trials=LONG_TAIL["n_trials"],
        seed=SEED,
    )
    return _rate(request)


def measure() -> dict:
    """Run every measurement and return the ``kernels`` section payload."""
    per_family = {
        family: round(_rate(_family_request(family)), 2)
        for family in sorted(FAMILY_WORKLOADS)
    }
    long_tail = _long_tail_rate()
    legacy = _legacy_long_tail_rate()
    return {
        "long_tail_workload": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in LONG_TAIL.items()
        },
        "long_tail_colonies_per_second": round(long_tail, 2),
        "legacy_long_tail_colonies_per_second": round(legacy, 2),
        "speedup_vs_legacy_long_tail": round(long_tail / legacy, 2),
        "colonies_per_second": per_family,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def assert_gates(payload: dict) -> None:
    speedup = payload["speedup_vs_legacy_long_tail"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"blocked kernels must beat the pre-extraction per-round kernel "
        f"by >= {SPEEDUP_FLOOR}x on the long-tail workload, got {speedup}x"
    )


def check_against_record(payload: dict, recorded: dict) -> list:
    """Coarse regression check vs the committed record; returns failures."""
    failures = []
    baseline = recorded.get("colonies_per_second", {})
    for family, rate in payload["colonies_per_second"].items():
        floor = baseline.get(family, 0.0) * CROSS_MACHINE_FLOOR
        if rate < floor:
            failures.append(
                f"{family}: {rate} colonies/sec < {floor:.1f} "
                f"({CROSS_MACHINE_FLOOR}x the recorded "
                f"{baseline[family]})"
            )
    return failures


def test_kernel_throughput_record():
    """Pytest entry: measure, gate, and record the kernels section."""
    recorded = {}
    if RECORD_PATH.exists():
        try:
            recorded = json.loads(RECORD_PATH.read_text()).get("kernels", {})
        except json.JSONDecodeError:
            recorded = {}
    payload = measure()
    record = update_record("kernels", payload)
    print()
    print(json.dumps(record.get("kernels", {}), indent=2, sort_keys=True))
    assert_gates(payload)
    failures = check_against_record(payload, recorded)
    assert not failures, "kernel throughput regressed: " + "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on gate violations or regressions vs the "
        "committed record",
    )
    args = parser.parse_args(argv)

    recorded = {}
    if RECORD_PATH.exists():
        try:
            recorded = json.loads(RECORD_PATH.read_text()).get("kernels", {})
        except json.JSONDecodeError:
            recorded = {}
    payload = measure()
    update_record("kernels", payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not args.check:
        return 0
    try:
        assert_gates(payload)
    except AssertionError as error:
        print(f"GATE FAILED: {error}", file=sys.stderr)
        return 1
    failures = check_against_record(payload, recorded)
    if failures:
        print("REGRESSION vs recorded baseline:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"kernel gates OK: {payload['speedup_vs_legacy_long_tail']}x vs "
        f"legacy (floor {SPEEDUP_FLOOR}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
