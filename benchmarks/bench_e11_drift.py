"""E11 bench — drift-line concentration (Corollary 4.10)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e11_drift import run
from repro.lowerbound.drift import measure_max_deviation
from repro.markov.random_automata import biased_walk_automaton


def test_e11_deviation_kernel(benchmark, rng):
    machine = biased_walk_automaton([5, 1, 1, 1], ell=3)
    deviation, line = benchmark(measure_max_deviation, machine, 2_000, rng)
    assert deviation >= 0.0
    assert line.drift[1] > 0


def test_e11_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
