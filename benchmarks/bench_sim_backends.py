"""Backend throughput benchmark — updates ``BENCH_sim_backends.json``.

Runs the same workload (Algorithm 1 colonies hunting the corner target)
through every registered backend, measures colonies/sec, and records
the numbers next to this file so the performance trajectory is tracked
from PR to PR.  The acceptance floor — the ``batched`` backend at least
10x the ``reference`` engine — is asserted, with the measured margin in
the JSON (typically two to three orders of magnitude).

Timing runs bypass the result cache (``cache=False``): a cached replay
would measure the cache, not the backend.  The sweep-compilation
companion lives in ``bench_sweep_compile.py``; both write disjoint
sections of the shared JSON record.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import time

from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.selector import machine_fingerprint

RECORD_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_sim_backends.json"
HISTORY_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_history.jsonl"

WORKLOAD = {
    "algorithm": "algorithm1",
    "distance": 32,
    "n_agents": 8,
    "target": (32, 32),
    "move_budget": 100_000,
}

# Colonies per timing run, scaled to each backend's expected throughput
# so every measurement covers a comparable wall-clock slice.
_TRIALS = {"reference": 5, "closed_form": 100, "batched": 400}


def update_record(section: str, payload: dict) -> dict:
    """Merge one benchmark's section into the shared JSON record.

    Every call also appends a dated snapshot line to
    ``BENCH_history.jsonl`` — the in-place JSON holds only the latest
    numbers, the JSONL holds the whole perf trajectory across PRs in a
    machine-readable form (one ``{"recorded_at", "section", "payload",
    "machine"}`` object per line).  The ``machine`` fingerprint (CPU
    model, core count, numpy version) makes cross-machine floor drift
    diagnosable: when a committed record was measured on different
    hardware, the history says so.
    """
    record = {}
    if RECORD_PATH.exists():
        try:
            record = json.loads(RECORD_PATH.read_text())
        except json.JSONDecodeError:
            record = {}
    if not isinstance(record, dict) or not all(
        isinstance(value, dict) for value in record.values()
    ):
        # Upgrade pre-section layouts (flat keys like
        # "colonies_per_second" at top level) by starting over; a
        # section-shaped record is preserved regardless of which
        # benchmark runs first.
        record = {}
    record[section] = payload
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    snapshot = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "section": section,
        "payload": payload,
        "machine": machine_fingerprint(),
    }
    with HISTORY_PATH.open("a") as history:
        history.write(json.dumps(snapshot, sort_keys=True) + "\n")
    return record


def _colonies_per_second(backend: str) -> float:
    n_trials = _TRIALS[backend]
    request = SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(WORKLOAD["distance"]),
        n_agents=WORKLOAD["n_agents"],
        target=WORKLOAD["target"],
        move_budget=WORKLOAD["move_budget"],
        n_trials=n_trials,
        seed=20140507,
    )
    start = time.perf_counter()
    result = simulate(request, backend=backend, cache=False)
    elapsed = time.perf_counter() - start
    assert len(result.outcomes) == n_trials
    return n_trials / elapsed


def test_backend_throughput_record():
    rates = {name: _colonies_per_second(name) for name in sorted(_TRIALS)}
    speedup = rates["batched"] / rates["reference"]
    payload = {
        "workload": WORKLOAD,
        "colonies_per_second": {name: round(rate, 2) for name, rate in rates.items()},
        "speedup_batched_vs_reference": round(speedup, 1),
        "trials_timed": _TRIALS,
    }
    record = update_record("backends", payload)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))
    assert speedup >= 10.0, (
        f"batched backend must beat reference by >= 10x colonies/sec, "
        f"got {speedup:.1f}x"
    )
