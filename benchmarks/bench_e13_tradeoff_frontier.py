"""E13 bench — the chi/performance frontier (headline claim)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e13_tradeoff_frontier import run
from repro.lowerbound.coverage import adversarial_target
from repro.markov.random_automata import uniform_walk_automaton


def test_e13_adversary_kernel(benchmark):
    target = benchmark(adversarial_target, uniform_walk_automaton(), 64)
    assert max(abs(target[0]), abs(target[1])) <= 64


def test_e13_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
