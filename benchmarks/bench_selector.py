"""Selector evaluation benchmark — oracle regret and adaptive savings.

Evaluates the cost-model backend selector (:mod:`repro.sim.selector`)
with the discipline used for algorithm-selection systems (SNIPPETS.md
Snippet 1 / AutoTSP): measure every candidate backend on a workload
matrix, then compare four policies on the *same* measured table —

* **oracle** — per workload, the backend that was actually fastest
  (omniscient lower bound);
* **selector** — the backend the calibrated cost model picks via
  :func:`~repro.sim.selector.plan_request`;
* **single-best** — the one fixed backend with the lowest total time
  across the whole matrix (what a hardcoded default could achieve);
* **random** — the expected time of a uniformly random supporting
  backend (the no-information baseline).

Gates (``--check``, run in CI): the selector's time-weighted regret vs
the oracle must stay <= 10%, and its total time must never exceed the
single-best backend's.  Per-workload relative regrets are recorded too
but not gated — sub-millisecond cells make them noisy.

The companion **adaptive sampling** measurement runs
:func:`~repro.sim.jobs.simulate_adaptive` against the worst-case-
variance fixed-n design: to guarantee a CI half-width ``w`` at any hit
probability, a fixed design must plan ``n = (z/(2w))^2`` trials
(variance bound at p=1/2), while the adaptive run stops as soon as the
realized Agresti–Coull interval is tight.  Gate: >= 2x fewer trials at
equal target width on at least two families.

Both sections land in ``BENCH_sim_backends.json`` (with history + a
machine fingerprint in ``BENCH_history.jsonl``) via the shared
``update_record``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from bench_sim_backends import update_record

from repro.sim import AlgorithmSpec, SimulationRequest
from repro.sim.backends.registry import get_backend
from repro.sim.jobs import simulate_adaptive
from repro.sim.selector import calibrate, plan_request
from repro.sim.stats import normal_quantile

SEED = 20140507
REPEATS = 2

#: The CPU backends every matrix workload is measured on (the
#: accelerator declines without a device and would hole the table).
CANDIDATES = ("batched", "closed_form", "reference")

_SPECS = {
    "algorithm1": lambda: AlgorithmSpec.algorithm1(8),
    "nonuniform": lambda: AlgorithmSpec.nonuniform(8, 1),
    "uniform": lambda: AlgorithmSpec.uniform(1),
    "doubly-uniform": lambda: AlgorithmSpec.doubly_uniform(1),
    "random-walk": AlgorithmSpec.random_walk,
    "feinerman": AlgorithmSpec.feinerman,
}

#: Every selector family at single-trial and batch scale.  Small
#: distance/budget so the per-trial reference engine finishes each cell
#: quickly — the matrix exercises backend *choice*, not kernel scale.
WORKLOADS = tuple(
    {"family": family, "n_trials": n_trials, "move_budget": 20_000}
    for family in sorted(_SPECS)
    for n_trials in (1, 48)
)

ORACLE_REGRET_FLOOR = 0.10
ADAPTIVE_SAVINGS_FLOOR = 2.0
ADAPTIVE_CONFIDENCE = 0.95
ADAPTIVE_TARGET_HALF_WIDTH = 0.04
ADAPTIVE_FAMILIES = ("algorithm1", "feinerman")


def _workload_request(workload: dict) -> SimulationRequest:
    return SimulationRequest(
        algorithm=_SPECS[workload["family"]](),
        n_agents=4,
        target=(8, 8),
        move_budget=workload["move_budget"],
        n_trials=workload["n_trials"],
        seed=SEED,
        seed_keys=(7,),
    )


def _time_backend(backend_name: str, request: SimulationRequest) -> float:
    """Best-of-REPEATS direct ``backend.run`` wall-clock (no cache)."""
    backend = get_backend(backend_name)
    best = math.inf
    for _ in range(REPEATS):
        start = time.perf_counter()
        outcomes = backend.run(request)
        best = min(best, time.perf_counter() - start)
        assert len(outcomes) == request.n_trials
    return best


def measure_selector() -> dict:
    """Calibrate, measure the matrix, and score the four policies."""
    profile = calibrate(
        backends=CANDIDATES, measure_pool=False, save=True
    )
    times = []  # one {backend: seconds} per workload
    choices = []
    for workload in WORKLOADS:
        request = _workload_request(workload)
        times.append({
            name: _time_backend(name, request) for name in CANDIDATES
        })
        choices.append(
            plan_request(request, workers=1, profile=profile).backend
        )

    oracle_total = sum(min(row.values()) for row in times)
    selector_total = sum(
        row[choice] for row, choice in zip(times, choices)
    )
    single_best_name = min(
        CANDIDATES, key=lambda name: sum(row[name] for row in times)
    )
    single_best_total = sum(row[single_best_name] for row in times)
    random_total = sum(
        sum(row.values()) / len(row) for row in times
    )

    rows = []
    regrets = []
    for workload, row, choice in zip(WORKLOADS, times, choices):
        oracle_backend = min(row, key=row.get)
        regret = row[choice] / row[oracle_backend] - 1.0
        regrets.append(regret)
        rows.append({
            **workload,
            "oracle_backend": oracle_backend,
            "oracle_seconds": round(row[oracle_backend], 6),
            "selector_backend": choice,
            "selector_seconds": round(row[choice], 6),
            "relative_regret": round(regret, 4),
        })

    return {
        "candidates": list(CANDIDATES),
        "calibration_entries": len(profile.entries),
        "workloads": rows,
        "policies_total_seconds": {
            "oracle": round(oracle_total, 6),
            "selector": round(selector_total, 6),
            "single_best": round(single_best_total, 6),
            "random": round(random_total, 6),
        },
        "single_best_backend": single_best_name,
        "total_time_regret": round(selector_total / oracle_total - 1.0, 4),
        "mean_relative_regret": round(sum(regrets) / len(regrets), 4),
        "exact_picks": sum(
            1 for row, choice in zip(times, choices)
            if choice == min(row, key=row.get)
        ),
        "regret_floor": ORACLE_REGRET_FLOOR,
    }


def _fixed_n_trials(confidence: float, half_width: float) -> int:
    """Worst-case-variance fixed design: n guaranteeing hw <= target."""
    z = normal_quantile(0.5 + confidence / 2.0)
    return int(math.ceil((z / (2.0 * half_width)) ** 2))


def measure_adaptive() -> dict:
    """Adaptive-vs-fixed trial consumption at equal target CI width."""
    fixed_n = _fixed_n_trials(ADAPTIVE_CONFIDENCE, ADAPTIVE_TARGET_HALF_WIDTH)
    families = {}
    for family in ADAPTIVE_FAMILIES:
        request = SimulationRequest(
            algorithm=_SPECS[family](),
            n_agents=4,
            target=(8, 8),
            move_budget=50_000,
            n_trials=fixed_n,
            seed=SEED,
            seed_keys=(11,),
        )
        run = simulate_adaptive(
            request,
            metric="hit_probability",
            target_half_width=ADAPTIVE_TARGET_HALF_WIDTH,
            confidence=ADAPTIVE_CONFIDENCE,
            batch_size=32,
            cache=False,
        )
        families[family] = {
            "trials_used": run.trials_used,
            "converged": run.converged,
            "estimate": round(run.estimate, 4),
            "half_width": round(run.half_width, 4),
            "savings_x": round(fixed_n / run.trials_used, 2),
        }
    return {
        "confidence": ADAPTIVE_CONFIDENCE,
        "target_half_width": ADAPTIVE_TARGET_HALF_WIDTH,
        "fixed_n_trials": fixed_n,
        "metric": "hit_probability",
        "batch_size": 32,
        "families": families,
        "min_savings_x": min(
            entry["savings_x"] for entry in families.values()
        ),
        "savings_floor": ADAPTIVE_SAVINGS_FLOOR,
    }


def assert_gates(selector_payload: dict, adaptive_payload: dict) -> None:
    regret = selector_payload["total_time_regret"]
    assert regret <= ORACLE_REGRET_FLOOR, (
        f"selector regret vs oracle must stay <= "
        f"{ORACLE_REGRET_FLOOR:.0%}, got {regret:.1%}"
    )
    totals = selector_payload["policies_total_seconds"]
    assert totals["selector"] <= totals["single_best"] + 1e-9, (
        f"selector ({totals['selector']}s) must never lose to the "
        f"single best backend "
        f"({selector_payload['single_best_backend']}: "
        f"{totals['single_best']}s)"
    )
    converged = [
        family
        for family, entry in adaptive_payload["families"].items()
        if entry["converged"]
        and entry["savings_x"] >= ADAPTIVE_SAVINGS_FLOOR
    ]
    assert len(converged) >= 2, (
        f"adaptive sampling must save >= {ADAPTIVE_SAVINGS_FLOOR}x trials "
        f"vs the fixed-n design on at least two families, got "
        f"{adaptive_payload['families']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when a selector or adaptive gate is violated",
    )
    args = parser.parse_args(argv)

    selector_payload = measure_selector()
    adaptive_payload = measure_adaptive()
    update_record("selector", selector_payload)
    update_record("adaptive_sampling", adaptive_payload)
    print(json.dumps(
        {"selector": selector_payload, "adaptive_sampling": adaptive_payload},
        indent=2, sort_keys=True,
    ))
    if not args.check:
        return 0
    try:
        assert_gates(selector_payload, adaptive_payload)
    except AssertionError as error:
        print(f"GATE FAILED: {error}", file=sys.stderr)
        return 1
    totals = selector_payload["policies_total_seconds"]
    print(
        f"selector gates OK: regret "
        f"{selector_payload['total_time_regret']:.1%} vs oracle "
        f"({selector_payload['exact_picks']}/{len(WORKLOADS)} exact picks), "
        f"selector {totals['selector']}s <= single-best "
        f"{totals['single_best']}s "
        f"({selector_payload['single_best_backend']}); adaptive saves "
        f">= {adaptive_payload['min_savings_x']}x trials "
        f"(fixed n={adaptive_payload['fixed_n_trials']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
