"""E09 bench — Algorithm 5 performance (Theorem 3.14)."""

from __future__ import annotations

from conftest import report

from repro.core.uniform import calibrated_K
from repro.experiments.e09_uniform_scaling import run
from repro.sim.fast import fast_uniform


def test_e09_uniform_first_find_kernel(benchmark, rng):
    outcome = benchmark(
        fast_uniform, 8, 1, calibrated_K(1), (32, 32), rng, 50_000_000
    )
    assert outcome.found


def test_e09_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
