"""E09 bench — Algorithm 5 performance (Theorem 3.14)."""

from __future__ import annotations

from conftest import report

from repro.core.uniform import calibrated_K
from repro.experiments.e09_uniform_scaling import run
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

_REQUEST = SimulationRequest(
    algorithm=AlgorithmSpec.uniform(1, calibrated_K(1)),
    n_agents=8,
    target=(32, 32),
    move_budget=50_000_000,
    seed=20140507,
)


def test_e09_uniform_first_find_kernel(benchmark):
    result = benchmark(simulate, _REQUEST, "closed_form")
    assert result.outcome.found


def test_e09_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
