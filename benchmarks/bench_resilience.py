"""Resilience overhead + recovery gate — updates ``BENCH_sim_backends.json``.

The ISSUE's budget for the fault-injection seams and retry machinery:
resilience must be cheap enough to be on unconditionally.  Two
measurements:

* **fault-free overhead** — the standard batched hot path timed with
  the harness fully disabled (``REPRO_ANTS_FAULTS`` unset: every
  ``maybe_inject`` short-circuits on one flag test) versus *armed but
  empty* (an activated plan with zero rules: env parsing plus a
  per-seam rule scan, the state the CI chaos gate runs the whole
  suite under).  The gate asserts armed-but-empty stays within 5% of
  disabled (plus a small absolute allowance so scheduler jitter on a
  sub-second workload cannot fail the gate on its own — the same
  pattern as ``bench_obs``);
* **recovery time** — a pooled multi-shard job with a worker killed
  mid-shard (``os._exit`` in the worker, breaking the executor for
  every in-flight sibling) timed against the identical unfaulted job.
  The difference is what one worker death costs end to end: pool
  rebuild + backoff + re-execution of the lost shards.  The killed run
  must still produce bit-identical outcomes — recorded, not gated on
  wall-clock, since pool rebuild time is machine-dependent.

Run as pytest (CI's perf step) or directly::

    PYTHONPATH=src python benchmarks/bench_resilience.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from bench_sim_backends import update_record

from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    activate,
    deactivate,
)
from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.sim.jobs import JobManager

OVERHEAD_WORKLOAD = {
    "algorithm": "algorithm1",
    "distance": 32,
    "n_agents": 8,
    "target": (32, 32),
    "move_budget": 100_000,
    "n_trials": 400,
    "backend": "batched",
}

RECOVERY_WORKLOAD = {
    "algorithm": "algorithm1",
    "distance": 8,
    "n_agents": 2,
    "target": (6, 4),
    "move_budget": 200_000,
    "n_trials": 8,
    "backend": "closed_form",
    "workers": 4,
    "killed_shard": 2,
}

_REPEATS = 3
_MAX_OVERHEAD_RATIO = 1.05
_NOISE_ALLOWANCE_SECONDS = 0.25


def _overhead_request(seed: int) -> SimulationRequest:
    spec = OVERHEAD_WORKLOAD
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(spec["distance"]),
        n_agents=spec["n_agents"],
        target=spec["target"],
        move_budget=spec["move_budget"],
        n_trials=spec["n_trials"],
        seed=seed,
    )


def _time_once(seed: int) -> float:
    start = time.perf_counter()
    result = simulate(
        _overhead_request(seed),
        backend=OVERHEAD_WORKLOAD["backend"],
        cache=False,
    )
    elapsed = time.perf_counter() - start
    assert len(result.outcomes) == OVERHEAD_WORKLOAD["n_trials"]
    return elapsed


def _best_of(armed: bool) -> float:
    deactivate()
    if armed:
        activate(FaultPlan(specs=()))
    try:
        # Distinct seeds defeat any residual memoization while keeping
        # the workload statistically identical run to run.
        return min(_time_once(8100 + i) for i in range(_REPEATS))
    finally:
        deactivate()


def _recovery_request() -> SimulationRequest:
    spec = RECOVERY_WORKLOAD
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(spec["distance"]),
        n_agents=spec["n_agents"],
        target=spec["target"],
        move_budget=spec["move_budget"],
        n_trials=spec["n_trials"],
        seed=8200,
    )


def _run_pooled(faulted: bool):
    """(elapsed_seconds, outcomes) for one pooled run of the workload.

    A fresh :class:`JobManager` per run: its pool forks after the plan
    is (de)activated, so the workers see exactly the intended state,
    and pool startup cost is paid identically by both runs.
    """
    deactivate()
    if faulted:
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.shard",
                        kind="kill",
                        match={
                            "shard_index": RECOVERY_WORKLOAD["killed_shard"],
                            "attempt": 0,
                        },
                    ),
                )
            )
        )
    manager = JobManager()
    try:
        start = time.perf_counter()
        job = manager.submit(
            _recovery_request(),
            backend=RECOVERY_WORKLOAD["backend"],
            workers=RECOVERY_WORKLOAD["workers"],
            cache=False,
        )
        result = job.result(timeout=300)
        return time.perf_counter() - start, result.outcomes
    finally:
        deactivate()
        manager.close()


def measure() -> dict:
    # Warm both code paths before timing anything.
    _time_once(8099)
    disabled = _best_of(armed=False)
    armed = _best_of(armed=True)
    clean_seconds, clean_outcomes = _run_pooled(faulted=False)
    killed_seconds, killed_outcomes = _run_pooled(faulted=True)
    assert killed_outcomes == clean_outcomes, (
        "worker-killed run diverged from the unfaulted run — the "
        "recovery measurement would be of a broken recovery"
    )
    return {
        "overhead_workload": OVERHEAD_WORKLOAD,
        "disabled_seconds": round(disabled, 4),
        "armed_empty_seconds": round(armed, 4),
        "overhead_ratio": round(armed / disabled, 4),
        "max_overhead_ratio": _MAX_OVERHEAD_RATIO,
        "noise_allowance_seconds": _NOISE_ALLOWANCE_SECONDS,
        "repeats": _REPEATS,
        "recovery_workload": RECOVERY_WORKLOAD,
        "clean_run_seconds": round(clean_seconds, 4),
        "killed_run_seconds": round(killed_seconds, 4),
        "recovery_seconds": round(max(0.0, killed_seconds - clean_seconds), 4),
        "killed_run_bit_identical": True,
    }


def _gate(payload: dict) -> None:
    disabled = payload["disabled_seconds"]
    armed = payload["armed_empty_seconds"]
    bound = disabled * _MAX_OVERHEAD_RATIO + _NOISE_ALLOWANCE_SECONDS
    assert armed <= bound, (
        f"fault-seam overhead exceeds the 5% budget "
        f"(+{_NOISE_ALLOWANCE_SECONDS}s noise allowance): disabled "
        f"{disabled:.3f}s, armed-but-empty {armed:.3f}s "
        f"({payload['overhead_ratio']:.3f}x, bound {bound:.3f}s)"
    )
    assert payload["killed_run_bit_identical"]


def test_resilience_record():
    payload = measure()
    record = update_record("resilience", payload)
    print()
    print(json.dumps(record["resilience"], indent=2, sort_keys=True))
    _gate(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when the armed-but-empty fault harness "
             "exceeds the 5%% overhead budget against the disabled "
             "baseline, or the worker-killed run is not bit-identical",
    )
    args = parser.parse_args(argv)
    payload = measure()
    record = update_record("resilience", payload)
    print(json.dumps(record["resilience"], indent=2, sort_keys=True))
    if args.check:
        try:
            _gate(payload)
        except AssertionError as error:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
        print("resilience gate: ok "
              f"(overhead {payload['overhead_ratio']:.3f}x <= "
              f"{_MAX_OVERHEAD_RATIO}x + noise, recovery "
              f"{payload['recovery_seconds']:.3f}s, killed run "
              f"bit-identical)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
