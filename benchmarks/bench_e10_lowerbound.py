"""E10 bench — the lower bound in action (Theorem 4.1)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e10_lowerbound import run
from repro.lowerbound.colony import simulate_colony
from repro.markov.random_automata import uniform_walk_automaton


def test_e10_colony_kernel(benchmark, rng):
    result = benchmark(
        simulate_colony,
        uniform_walk_automaton(),
        16,
        2_000,
        rng,
        window_radius=32,
    )
    assert result.visited_count() >= 1


def test_e10_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
