"""E16 bench — Doeblin/Rosenthal mixing envelopes (Corollary 4.6)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e16_mixing import run
from repro.markov.random_automata import uniform_walk_automaton
from repro.markov.stationary import stationary_distribution


def test_e16_stationary_kernel(benchmark):
    chain = uniform_walk_automaton().to_markov_chain()

    def solve():
        from repro.markov.classify import classify_states

        members = sorted(classify_states(chain).recurrent_classes[0])
        return stationary_distribution(chain, members)

    pi = benchmark(solve)
    assert abs(pi.sum() - 1.0) < 1e-9


def test_e16_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
