"""E01 bench — iteration move counts (Lemmas 3.1/3.2).

Times the vectorized iteration sampler and regenerates the E01 table.
"""

from __future__ import annotations

from conftest import report

from repro.experiments.e01_iteration_moves import run, sample_iterations


def test_e01_iteration_sampling_kernel(benchmark, rng):
    lengths, hit = benchmark(sample_iterations, 128, 20_000, rng)
    assert lengths.shape == (20_000,)
    assert hit.shape == (20_000,)


def test_e01_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
