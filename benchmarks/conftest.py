"""Shared fixtures for the benchmark harness.

Every ``bench_eXX_*.py`` file pairs one pytest-benchmark timing (the
experiment's computational kernel) with a full smoke-scale run of the
registered experiment: the run prints the paper-vs-measured table
(visible with ``-s``) and asserts that every named check passes, so
``pytest benchmarks/ --benchmark-only`` regenerates and validates the
entire experiment suite.
"""

from __future__ import annotations

import os

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Keep benchmark runs out of the developer's real result cache."""
    from repro.sim.cache import configure_cache

    directory = tmp_path_factory.mktemp("repro-ants-cache")
    os.environ["REPRO_ANTS_CACHE_DIR"] = str(directory)
    configure_cache(directory=directory)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for benchmark kernels."""
    return np.random.default_rng(20140507)


def report(result) -> None:
    """Print an experiment's table and enforce its checks."""
    print()
    print(result.to_markdown())
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{result.experiment_id} checks failed: {failed}"
