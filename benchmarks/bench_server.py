"""Serving-layer benchmark — updates ``BENCH_sim_backends.json``.

Boots a real :class:`~repro.server.app.SimulationServer` on an
ephemeral port and measures what the HTTP/SSE layer costs remote
callers:

* **submit -> first event latency** — wall-clock from ``POST /v1/jobs``
  to the first SSE event on ``/v1/jobs/{id}/events`` (the number an
  incremental dashboard sees), and to the first completed *shard*;
* **requests/sec** — sequential round-trip throughput on a cheap
  introspection route (``GET /v1/health``), the floor for pollers;
* **remote overhead** — remote ``simulate()`` wall-clock over the
  in-process call for the standard workload.

Gates are deliberately loose (regression tripwires, not precision
numbers): the serving layer must answer health checks at >= 50 req/s
and deliver a first event within 2 s on the standard workload.
"""

from __future__ import annotations

import json
import time

from bench_sim_backends import update_record

from repro.server.app import SimulationServer
from repro.server.client import RemoteClient
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

WORKLOAD = {
    "algorithm": "algorithm1",
    "distance": 32,
    "n_agents": 8,
    "target": (32, 32),
    "move_budget": 100_000,
    "n_trials": 200,
    "backend": "batched",
}

_REPEATS = 3
_HEALTH_ROUNDTRIPS = 100


def _request(seed: int) -> SimulationRequest:
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(WORKLOAD["distance"]),
        n_agents=WORKLOAD["n_agents"],
        target=WORKLOAD["target"],
        move_budget=WORKLOAD["move_budget"],
        n_trials=WORKLOAD["n_trials"],
        seed=seed,
    )


def _time_submit_to_first_event(client: RemoteClient, seed: int):
    """(first-event latency, first-shard latency, total stream time)."""
    start = time.perf_counter()
    job = client.submit(
        _request(seed), backend=WORKLOAD["backend"], cache=False
    )
    first_event = None
    first_shard = None
    for event, _data in job.iter_events():
        now = time.perf_counter() - start
        if first_event is None:
            first_event = now
        if event == "shard" and first_shard is None:
            first_shard = now
    total = time.perf_counter() - start
    assert first_event is not None and first_shard is not None
    return first_event, first_shard, total


def test_serving_layer_record():
    with SimulationServer(port=0, max_jobs=8) as server:
        client = RemoteClient(server.url)

        # Requests/sec on the cheapest route, sequential round trips.
        client.health()  # warm the connection path
        start = time.perf_counter()
        for _ in range(_HEALTH_ROUNDTRIPS):
            client.health()
        health_elapsed = time.perf_counter() - start
        requests_per_second = _HEALTH_ROUNDTRIPS / health_elapsed

        # Submit -> first SSE event, best of N (distinct seeds so the
        # result cache can never serve a timing run).
        runs = [
            _time_submit_to_first_event(client, seed=1000 + index)
            for index in range(_REPEATS)
        ]
        first_event = min(run[0] for run in runs)
        first_shard = min(run[1] for run in runs)
        stream_total = min(run[2] for run in runs)

        # Remote-vs-local overhead on the same workload.
        local_start = time.perf_counter()
        local = simulate(
            _request(seed=9999), backend=WORKLOAD["backend"], cache=False
        )
        local_seconds = time.perf_counter() - local_start
        remote_start = time.perf_counter()
        remote = client.simulate(
            _request(seed=9999), backend=WORKLOAD["backend"], cache=False
        )
        remote_seconds = time.perf_counter() - remote_start
        assert len(remote.outcomes) == len(local.outcomes) == WORKLOAD["n_trials"]

    payload = {
        "workload": WORKLOAD,
        "requests_per_second": round(requests_per_second, 1),
        "submit_to_first_event_seconds": round(first_event, 4),
        "submit_to_first_shard_seconds": round(first_shard, 4),
        "sse_stream_total_seconds": round(stream_total, 4),
        "local_simulate_seconds": round(local_seconds, 4),
        "remote_simulate_seconds": round(remote_seconds, 4),
        "remote_overhead_ratio": round(remote_seconds / local_seconds, 3),
        "health_roundtrips": _HEALTH_ROUNDTRIPS,
        "repeats": _REPEATS,
    }
    record = update_record("serving", payload)
    print()
    print(json.dumps(record["serving"], indent=2, sort_keys=True))

    assert requests_per_second >= 50, (
        f"serving layer too slow: {requests_per_second:.0f} health "
        f"round-trips/sec (floor 50)"
    )
    assert first_event <= 2.0, (
        f"submit -> first SSE event took {first_event:.2f}s (ceiling 2s)"
    )
