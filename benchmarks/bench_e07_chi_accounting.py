"""E07 bench — Non-Uniform-Search chi accounting (Theorem 3.7)."""

from __future__ import annotations

from conftest import report

from repro.core.nonuniform import build_nonuniform_automaton
from repro.experiments.e07_chi_accounting import run


def test_e07_automaton_build_kernel(benchmark):
    machine = benchmark(build_nonuniform_automaton, 4096, 1)
    assert machine.n_states == 4 * 12 + 7


def test_e07_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
