"""E02 bench — per-iteration hit probability (Lemma 3.4)."""

from __future__ import annotations

from conftest import report

from repro.experiments.e02_hit_probability import empirical_hit_rate, run


def test_e02_hit_rate_kernel(benchmark, rng):
    rate = benchmark(empirical_hit_rate, 64, (64, 64), 20_000, rng)
    assert 0.0 <= rate <= 1.0


def test_e02_report(benchmark):
    result = benchmark.pedantic(run, args=("smoke",), rounds=1, iterations=1)
    report(result)
